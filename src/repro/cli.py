"""Command-line interface: parse, run, verify and report on relaxed programs.

Usage::

    repro parse FILE                      # parse and pretty-print a program
    repro run FILE [--relaxed] [--init x=1 ...]   # execute a program
    repro casestudy list                  # the registered case-study corpus
    repro casestudy lint [NAMES...]       # well-formedness gate for case studies
    repro verify-case-study NAME          # verify a registered case study
    repro verify-batch [NAMES...]         # batch-verify through the obligation engine
    repro explore NAME [--depth N]        # search the relaxation space of a case study
    repro explain NAME --site SITE_ID     # failure forensics for a seeded relaxation
    repro explain --from-json report.json # replay recorded diagnostics offline
    repro simulate-case-study NAME        # differential simulation
    repro effort                          # artifact-statistics table (all case studies)
    repro trace summarize FILE            # aggregate a recorded --trace file
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence

from . import telemetry
from .analysis.metrics import effort_rows, format_effort_table
from .cli_report import emit_json, emit_text, report_payload
from .casestudies import all_case_studies
from .lang.parser import parse_program
from .lang.pretty import pretty_program
from .semantics.choosers import CHOOSER_POLICIES, RandomChooser, make_chooser
from .semantics.interpreter import run_original, run_relaxed
from .semantics.state import State, Terminated

_EPILOG = """\
batch verification (the obligation engine):
  repro verify-batch                     verify every registered case study
  repro verify-batch NAME [NAME ...]     verify selected case studies
  repro verify-batch --dir DIR           verify every .rlx program in DIR
                                         (default acceptability spec)
  options:
    --jobs N        discharge obligations across N worker processes
    --cache-dir D   persist the obligation cache and portfolio win table
                    in D; re-runs answer unchanged obligations from the
                    cache with zero solver calls
    --budget S      per-obligation wall-clock budget (seconds) across
                    portfolio strategies; checked between strategies, a
                    running strategy is not preempted
    --json FILE     write the structured batch report to FILE ('-' for
                    stdout)

  The engine fingerprints each obligation (alpha-renaming, conjunct
  sorting), answers repeats from the cache, and races solver strategy
  configurations per obligation, learning which strategy wins.

relaxation-space exploration (verified autotuning):
  repro explore lu --depth 2 --json -    enumerate candidate relaxed
                                         programs (composing transforms at
                                         discovered sites), verify each
                                         generation as one pooled batch,
                                         score the verified survivors by
                                         seeded Monte Carlo simulation, and
                                         report the Pareto frontier over
                                         (distortion, estimated savings).
  repro explore lu --depth 4 \\          guided frontier search: expand only
      --strategy beam --beam-width 6     the most promising candidates per
                                         generation (score + learned
                                         site-kind reward prior); with the
                                         incremental gate, deep searches
                                         cost roughly what depth 2 does.
  Statically rejected candidates are never executed.  Verification is
  incremental across the search: obligations already settled this session
  are reused by canonical fingerprint (the 'incremental' counters in the
  JSON report prove the reuse rate) and only the delta is discharged.
  With --cache-dir the obligation cache also persists across invocations:
  sibling candidates share most obligations, so re-exploration answers
  them with zero solver calls.  --search-budget S bounds the whole
  search's wall clock.

failure forensics (repro explain / --explain):
  repro explain lu --site knob:N:f1      apply a relaxation site, verify,
                                         and explain every undischarged
                                         obligation: the counterexample
                                         model as concrete assignments,
                                         evaluated atom-by-atom against the
                                         violated formula, anchored to an
                                         annotated source excerpt and the
                                         relaxation site that caused it.
  repro verify-batch --explain           same forensics for every failed
                                         program of a batch; with --json
                                         the report gains a 'diagnostics'
                                         section that 'repro explain
                                         --from-json report.json' replays
                                         offline (no solver runs).

observability (--trace):
  repro verify-batch --trace trace.json  record a hierarchical span trace
                                         of the whole run (collect ->
                                         fingerprint -> cache -> dispatch ->
                                         per-obligation discharge, incl.
                                         worker processes) as Chrome
                                         trace_event JSON; open it in
                                         Perfetto (https://ui.perfetto.dev)
                                         or chrome://tracing.  A .jsonl
                                         suffix writes a line-per-event log
                                         instead.  --trace also works on
                                         verify-case-study and explore, and
                                         adds a "telemetry" section to
                                         --json reports.
  repro trace summarize trace.json       aggregate a recorded trace: time
                                         by stage, slowest spans, cache hit
                                         rates, strategy win/loss counts.

differential fuzzing (corpus-scale regression):
  repro fuzz --seed 0 --count 50         synthesize 50 seeded programs with
                                         planted relaxation sites, run each
                                         through lint -> verify -> explore,
                                         and assert parity across every
                                         layer: tree vs compiled vs vector
                                         evaluation, cold vs warm cache,
                                         exhaustive vs full-width beam
                                         (plus serial vs parallel with
                                         --jobs N).  Any mismatch is
                                         shrunk to a minimal reproducer
                                         (--divergence-dir D).
  repro fuzz --replay tests/corpus       re-verify the committed corpus and
                                         byte-compare fingerprints and
                                         verdicts against the committed
                                         expectations.
"""


@contextmanager
def _tracing(args: argparse.Namespace) -> Iterator[Optional[telemetry.TelemetrySession]]:
    """Activate a telemetry session for ``--trace`` (no-op without it).

    The session is installed for the duration of the command body and the
    trace file is written on the way out — including when the command
    raises, so a failing run still leaves its trace behind for diagnosis.
    """
    destination = getattr(args, "trace_out", None)
    if not destination:
        yield None
        return
    session = telemetry.TelemetrySession()
    telemetry.install(session)
    try:
        yield session
    finally:
        telemetry.uninstall()
        telemetry.write_chrome_trace(session, destination)


def _add_trace_argument(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--trace", dest="trace_out",
        help="record a telemetry trace to this file: Chrome trace_event "
        "JSON (open in Perfetto or chrome://tracing), or a JSONL event "
        "log with a .jsonl suffix; summarise with 'repro trace summarize'",
    )


def _add_backend_argument(command: argparse.ArgumentParser) -> None:
    from .solver.backend import BACKENDS

    command.add_argument(
        "--backend", choices=BACKENDS, default="auto",
        help="solver evaluation backend: 'vector' batches candidate "
        "assignments through numpy (requires the .[vec] extra), "
        "'compiled' uses the closure compiler, 'tree' the reference "
        "walker; 'auto' (default) picks vector when numpy is installed",
    )


def _apply_backend(args: argparse.Namespace) -> None:
    from .solver.backend import BackendUnavailableError, set_backend

    try:
        set_backend(getattr(args, "backend", "auto"))
    except BackendUnavailableError as error:
        raise SystemExit(str(error))


def _build_batch_engine(args: argparse.Namespace):
    from .engine import ObligationEngine

    if args.jobs < 1:
        raise SystemExit("--jobs must be >= 1")
    if args.budget is not None and args.budget <= 0:
        raise SystemExit("--budget must be a positive number of seconds")
    return ObligationEngine.for_batch(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        budget_seconds=args.budget,
    )


def _case_study_by_name(name: str):
    from .casestudies import get_case_study

    try:
        return get_case_study(name)
    except ValueError as error:
        raise SystemExit(str(error))


def _parse_initial_state(assignments: Sequence[str]) -> State:
    scalars: Dict[str, int] = {}
    for assignment in assignments:
        if "=" not in assignment:
            raise SystemExit(f"bad --init entry {assignment!r}; expected name=value")
        name, _, value = assignment.partition("=")
        scalars[name.strip()] = int(value)
    return State.of(scalars)


def cmd_parse(args: argparse.Namespace) -> int:
    with open(args.file, "r", encoding="utf-8") as handle:
        program = parse_program(handle.read(), name=args.file)
    print(pretty_program(program))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    with open(args.file, "r", encoding="utf-8") as handle:
        program = parse_program(handle.read(), name=args.file)
    state = _parse_initial_state(args.init or [])
    if args.relaxed:
        outcome = run_relaxed(program, state, chooser=RandomChooser(seed=args.seed))
    else:
        outcome = run_original(program, state)
    if isinstance(outcome, Terminated):
        print(f"terminated: {outcome.state}")
        for observation in outcome.observations:
            print(f"  observation {observation.label}: {observation.state}")
        return 0
    print(f"error outcome: {outcome}")
    return 1


def cmd_verify_case_study(args: argparse.Namespace) -> int:
    _apply_backend(args)
    case_study = _case_study_by_name(args.name)
    engine = None
    # --json promises cache hit/miss counters, so it needs an engine too
    # (an in-memory cache when no --cache-dir is given).
    if args.jobs != 1 or args.cache_dir or args.budget is not None or args.json_out:
        engine = _build_batch_engine(args)
    with _tracing(args) as session:
        with telemetry.span("verify-case-study", study=case_study.name):
            report = case_study.verify(engine=engine)
        if engine is not None:
            engine.save()  # persist the cache and the portfolio win table
    print(report.summary())
    diagnostics = None
    if args.explain:
        from .diagnostics import render_diagnostics
        from .diagnostics.explain import diagnostics_section, report_diagnostics

        found = report_diagnostics(report)
        diagnostics = diagnostics_section(found)
        if found:
            print()
            print(render_diagnostics(found))
    # Exit non-zero whenever any obligation failed or came back UNKNOWN:
    # an UNKNOWN is not a proof, so it must not look like one to scripts.
    exit_code = 0 if report.verified else 1
    if args.json_out:
        core: Dict[str, object] = {
            "name": case_study.name,
            "guarantees": report.guarantees(),
            "layers": {
                "original": report.original.as_dict(),
                "relaxed": report.relaxed.as_dict(),
            },
        }
        if diagnostics is not None:
            core["diagnostics"] = diagnostics
        emit_json(
            report_payload(
                "verify-case-study",
                core,
                verified=report.verified,
                engine=engine,
                telemetry_session=session,
            ),
            args.json_out,
        )
    return exit_code


def cmd_simulate_case_study(args: argparse.Namespace) -> int:
    case_study = _case_study_by_name(args.name)
    chooser_factory = None
    if args.chooser != "case-study":
        # Thread the CLI seed into the chooser construction itself, so a
        # simulation is reproducible from (--chooser, --seed) end to end.
        chooser_factory = lambda seed: make_chooser(args.chooser, seed=seed)
    summary = case_study.simulate(
        runs=args.runs, seed=args.seed, chooser_factory=chooser_factory
    )
    print(
        f"{case_study.name}: {summary.runs} differential runs "
        f"(chooser={args.chooser}, seed={args.seed})"
    )
    print(f"  relate violations : {summary.relate_violations}")
    print(f"  original errors   : {summary.original_errors}")
    print(f"  relaxed errors    : {summary.relaxed_errors}")
    if summary.records and summary.records[0].metrics:
        for name in sorted(summary.records[0].metrics):
            print(f"  mean {name}: {summary.mean_metric(name):.4g}")
    return 0


def cmd_verify_batch(args: argparse.Namespace) -> int:
    from .engine import case_study_items, directory_items, verify_batch

    _apply_backend(args)
    if args.dir and args.names:
        raise SystemExit("pass case-study names or --dir, not both")
    try:
        if args.dir:
            items = directory_items(args.dir)
        else:
            items = case_study_items(args.names or None)
    except ValueError as error:
        raise SystemExit(str(error))
    if not items:
        raise SystemExit("nothing to verify")
    engine = _build_batch_engine(args)
    with _tracing(args) as session:
        report = verify_batch(items, engine=engine)
    print(report.summary())
    core = report.as_dict()
    if args.explain:
        from .diagnostics import render_diagnostics
        from .diagnostics.explain import batch_diagnostics, diagnostics_section

        found = batch_diagnostics(report)
        core["diagnostics"] = diagnostics_section(found)
        if found:
            print()
            print(render_diagnostics(found))
    if args.json_out:
        emit_json(
            report_payload(
                "verify-batch",
                core,
                verified=report.all_verified,
                engine=engine,
                telemetry_session=session,
            ),
            args.json_out,
        )
    # all_verified is false whenever any obligation failed or is UNKNOWN
    # (an undischarged obligation is never a proof), or any program erred.
    return 0 if report.all_verified else 1


def cmd_explore(args: argparse.Namespace) -> int:
    from .explore import explore

    _apply_backend(args)
    if args.depth < 0:
        raise SystemExit("--depth must be >= 0")
    if args.samples < 1:
        raise SystemExit("--samples must be >= 1")
    if args.jobs < 1:
        raise SystemExit("--jobs must be >= 1")
    if args.beam_width < 1:
        raise SystemExit("--beam-width must be >= 1")
    if args.search_budget is not None and args.search_budget <= 0:
        raise SystemExit("--search-budget must be > 0")
    try:
        with _tracing(args) as session:
            report = explore(
                args.name,
                depth=args.depth,
                samples=args.samples,
                seed=args.seed,
                jobs=args.jobs,
                cache_dir=args.cache_dir,
                budget_seconds=args.budget,
                max_candidates=args.max_candidates,
                strategy=args.strategy,
                beam_width=args.beam_width,
                search_budget_seconds=args.search_budget,
            )
    except ValueError as error:
        raise SystemExit(str(error))
    print(report.summary())
    if args.json_out:
        emit_json(
            report_payload(
                "explore",
                report.as_dict(),
                verified=bool(report.survivors),
                telemetry_session=session,
            ),
            args.json_out,
        )
    if args.csv_out:
        emit_text(report.to_csv(), args.csv_out)
    return 0 if report.survivors else 1


def cmd_explain(args: argparse.Namespace) -> int:
    from .diagnostics.explain import explain_case_study, explain_from_payload

    if args.from_json:
        import json

        if args.name or args.site:
            raise SystemExit("--from-json replays a recorded report; "
                             "do not also pass a case study or --site")
        try:
            if args.from_json == "-":
                payload = json.load(sys.stdin)
            else:
                with open(args.from_json, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
        except (OSError, ValueError) as error:
            raise SystemExit(f"cannot read report envelope: {error}")
        try:
            report = explain_from_payload(payload)
        except ValueError as error:
            raise SystemExit(str(error))
        print(report.render())
        if args.json_out:
            emit_json(
                report_payload("explain", report.as_dict(), verified=report.verified),
                args.json_out,
            )
        return 0

    if not args.name:
        raise SystemExit("pass a case-study name (with --site) or --from-json FILE")
    engine = None
    if args.jobs != 1 or args.cache_dir or args.budget is not None:
        engine = _build_batch_engine(args)
    with _tracing(args) as session:
        with telemetry.span("explain", study=args.name):
            try:
                report = explain_case_study(
                    args.name, args.site or [], engine=engine
                )
            except ValueError as error:
                raise SystemExit(str(error))
        if engine is not None:
            engine.save()
    print(report.render())
    if args.json_out:
        emit_json(
            report_payload(
                "explain",
                report.as_dict(),
                verified=report.verified,
                engine=engine,
                telemetry_session=session,
            ),
            args.json_out,
        )
    # 'explain' is a forensic tool: producing the explanation IS success,
    # whether or not the relaxed program verified.
    return 0


def cmd_trace_summarize(args: argparse.Namespace) -> int:
    from .telemetry import TraceFormatError, summarize_trace

    if args.top < 1:
        raise SystemExit("--top must be >= 1")
    try:
        summary = summarize_trace(args.file, top=args.top)
    except OSError as error:
        raise SystemExit(f"cannot read trace file: {error}")
    except TraceFormatError as error:
        raise SystemExit(f"not a recognised trace file: {error}")
    if args.json_out:
        emit_json(summary.as_dict(), args.json_out)
    else:
        print(summary.render())
    return 0


def cmd_effort(args: argparse.Namespace) -> int:
    rows = []
    for cls in all_case_studies():
        case_study = cls()
        report = case_study.verify()
        rows.extend(effort_rows(case_study.name, report, case_study.paper_proof_lines))
    print(format_effort_table(rows))
    return 0


def cmd_casestudy_list(args: argparse.Namespace) -> int:
    rows = []
    for cls in all_case_studies():
        case_study = cls()
        kind = "declarative" if hasattr(cls, "definition") else "hand-written"
        rows.append((case_study.name, kind, case_study.paper_section))
    width = max(len(row[0]) for row in rows) if rows else 4
    print(f"{'name':<{width}}  kind          paper section")
    print("-" * (width + 30))
    for name, kind, section in rows:
        print(f"{name:<{width}}  {kind:<12}  {section}")
    if args.json_out:
        payload = report_payload(
            "casestudy-list",
            {
                "studies": [
                    {"name": name, "kind": kind, "paper_section": section}
                    for name, kind, section in rows
                ]
            },
            verified=bool(rows),
        )
        emit_json(payload, args.json_out)
    return 0


def cmd_casestudy_lint(args: argparse.Namespace) -> int:
    from .casestudies import lint_registry

    try:
        reports = lint_registry(args.names or None)
    except ValueError as error:
        raise SystemExit(str(error))
    for report in reports:
        print(report.summary())
    all_ok = all(report.ok for report in reports)
    if args.json_out:
        payload = report_payload(
            "casestudy-lint",
            {"studies": [report.as_dict() for report in reports]},
            verified=all_ok,
        )
        emit_json(payload, args.json_out)
    # A lint failure must fail scripts/CI, exactly like a failed proof.
    return 0 if all_ok else 1


def cmd_fuzz(args: argparse.Namespace) -> int:
    from .fuzz import replay_corpus, run_fuzz, write_corpus

    if args.replay:
        report = replay_corpus(args.replay)
        print(report.summary())
        if args.json_out:
            emit_json(
                report_payload("fuzz", report.as_dict(), verified=report.ok),
                args.json_out,
            )
        return 0 if report.ok else 1

    if args.count < 1:
        raise SystemExit("--count must be >= 1")
    if args.depth < 0:
        raise SystemExit("--depth must be >= 0")
    if args.jobs < 1:
        raise SystemExit("--jobs must be >= 1")
    with _tracing(args) as session:
        report = run_fuzz(
            seed=args.seed,
            count=args.count,
            depth=args.depth,
            jobs=args.jobs,
            samples=args.samples,
            divergence_dir=args.divergence_dir,
        )
    print(report.summary())
    if args.write_corpus:
        if report.ok:
            names = write_corpus(args.write_corpus, report)
            print(f"corpus: wrote {len(names)} programs to {args.write_corpus}")
        else:
            print("corpus: NOT written (run diverged)")
    if args.json_out:
        emit_json(
            report_payload(
                "fuzz",
                report.as_dict(),
                verified=report.ok,
                telemetry_session=session,
            ),
            args.json_out,
        )
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Verification framework for relaxed nondeterministic approximate programs",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    parse_cmd = subparsers.add_parser("parse", help="parse and pretty-print a program")
    parse_cmd.add_argument("file")
    parse_cmd.set_defaults(func=cmd_parse)

    run_cmd = subparsers.add_parser("run", help="execute a program")
    run_cmd.add_argument("file")
    run_cmd.add_argument("--relaxed", action="store_true", help="use the relaxed semantics")
    run_cmd.add_argument("--seed", type=int, default=0)
    run_cmd.add_argument("--init", action="append", help="initial value, e.g. --init x=3")
    run_cmd.set_defaults(func=cmd_run)

    verify_cmd = subparsers.add_parser("verify-case-study", help="verify a registered case study")
    verify_cmd.add_argument("name")
    verify_cmd.add_argument(
        "--jobs", type=int, default=1, help="parallel discharge worker processes"
    )
    verify_cmd.add_argument(
        "--cache-dir", help="directory for the persistent obligation cache"
    )
    verify_cmd.add_argument(
        "--budget", type=float, default=None, help="per-obligation budget in seconds"
    )
    verify_cmd.add_argument(
        "--json", dest="json_out",
        help="write the JSON report (incl. cache hit/miss counters) to this "
        "file ('-' = stdout)",
    )
    verify_cmd.add_argument(
        "--explain", action="store_true",
        help="render a forensic report for every undischarged obligation "
        "(source span, counterexample model, atom-by-atom evaluation) and "
        "add a 'diagnostics' section to --json output",
    )
    _add_backend_argument(verify_cmd)
    _add_trace_argument(verify_cmd)
    verify_cmd.set_defaults(func=cmd_verify_case_study)

    batch_cmd = subparsers.add_parser(
        "verify-batch",
        help="batch-verify case studies or a program directory via the obligation engine",
    )
    batch_cmd.add_argument(
        "names", nargs="*", help="case-study names (default: every registered case study)"
    )
    batch_cmd.add_argument("--dir", help="verify every .rlx program in this directory")
    batch_cmd.add_argument(
        "--jobs", type=int, default=1, help="parallel discharge worker processes"
    )
    batch_cmd.add_argument(
        "--cache-dir", help="directory for the persistent obligation cache"
    )
    batch_cmd.add_argument(
        "--budget",
        type=float,
        default=None,
        help="per-obligation budget in seconds (checked between portfolio "
        "strategies; a running strategy is not preempted)",
    )
    batch_cmd.add_argument(
        "--json", dest="json_out", help="write the JSON report to this file ('-' = stdout)"
    )
    batch_cmd.add_argument(
        "--explain", action="store_true",
        help="render a forensic report for every undischarged obligation "
        "across the batch and add a 'diagnostics' section to --json output",
    )
    _add_backend_argument(batch_cmd)
    _add_trace_argument(batch_cmd)
    batch_cmd.set_defaults(func=cmd_verify_batch)

    simulate_cmd = subparsers.add_parser(
        "simulate-case-study", help="differentially simulate a case study"
    )
    simulate_cmd.add_argument("name")
    simulate_cmd.add_argument("--runs", type=int, default=25)
    simulate_cmd.add_argument("--seed", type=int, default=0)
    simulate_cmd.add_argument(
        "--chooser",
        choices=("case-study",) + CHOOSER_POLICIES,
        default="case-study",
        help="nondeterminism policy for the relaxed runs: the case study's "
        "own substrate model (default) or a named policy constructed with "
        "the --seed",
    )
    simulate_cmd.set_defaults(func=cmd_simulate_case_study)

    explore_cmd = subparsers.add_parser(
        "explore",
        help="enumerate, verify and score the relaxation space of a case study",
    )
    explore_cmd.add_argument("name", help="case-study name (prefixes accepted, e.g. 'lu')")
    explore_cmd.add_argument(
        "--depth", type=int, default=1, help="maximum number of composed transforms"
    )
    explore_cmd.add_argument(
        "--samples", type=int, default=25, help="Monte Carlo samples per candidate"
    )
    explore_cmd.add_argument(
        "--jobs", type=int, default=1, help="parallel discharge worker processes"
    )
    explore_cmd.add_argument("--seed", type=int, default=0, help="simulation seed")
    explore_cmd.add_argument(
        "--cache-dir", help="persistent obligation cache shared across search rounds"
    )
    explore_cmd.add_argument(
        "--budget", type=float, default=None, help="per-obligation budget in seconds"
    )
    explore_cmd.add_argument(
        "--max-candidates", type=int, default=48, help="enumeration cap"
    )
    explore_cmd.add_argument(
        "--strategy",
        choices=("exhaustive", "beam"),
        default="exhaustive",
        help="frontier search strategy: expand every candidate per "
        "generation (exhaustive) or only the most promising (beam)",
    )
    explore_cmd.add_argument(
        "--beam-width",
        type=int,
        default=8,
        help="candidates expanded per generation under --strategy beam",
    )
    explore_cmd.add_argument(
        "--search-budget",
        type=float,
        default=None,
        help="wall-clock budget in seconds for the whole search "
        "(the report is marked truncated when it bites)",
    )
    explore_cmd.add_argument(
        "--json", dest="json_out", help="write the JSON report to this file ('-' = stdout)"
    )
    explore_cmd.add_argument(
        "--csv", dest="csv_out", help="write the per-candidate CSV to this file ('-' = stdout)"
    )
    _add_backend_argument(explore_cmd)
    _add_trace_argument(explore_cmd)
    explore_cmd.set_defaults(func=cmd_explore)

    explain_cmd = subparsers.add_parser(
        "explain",
        help="failure forensics: apply relaxation sites to a case study, "
        "verify, and explain every undischarged obligation",
    )
    explain_cmd.add_argument(
        "name", nargs="?", default=None,
        help="case-study name (omit when replaying with --from-json)",
    )
    explain_cmd.add_argument(
        "--site", action="append", default=None, metavar="SITE_ID",
        help="relaxation site to apply before verifying (repeatable, "
        "applied in order); site ids as discovered by 'repro explore', "
        "e.g. 'knob:N:f1' or 'perforate:i@L0:s2'",
    )
    explain_cmd.add_argument(
        "--from-json", dest="from_json", metavar="FILE",
        help="replay the 'diagnostics' section of a recorded --json report "
        "envelope ('-' = stdin) instead of re-verifying",
    )
    explain_cmd.add_argument(
        "--jobs", type=int, default=1, help="parallel discharge worker processes"
    )
    explain_cmd.add_argument(
        "--cache-dir",
        help="persistent obligation cache; answered obligations (and their "
        "counterexample models) replay from disk with zero solver calls",
    )
    explain_cmd.add_argument(
        "--budget", type=float, default=None, help="per-obligation budget in seconds"
    )
    explain_cmd.add_argument(
        "--json", dest="json_out",
        help="write the forensic report as JSON to this file ('-' = stdout)",
    )
    _add_trace_argument(explain_cmd)
    explain_cmd.set_defaults(func=cmd_explain)

    trace_cmd = subparsers.add_parser(
        "trace", help="inspect telemetry traces recorded with --trace"
    )
    trace_sub = trace_cmd.add_subparsers(dest="trace_command", required=True)
    summarize_cmd = trace_sub.add_parser(
        "summarize",
        help="aggregate a trace: time by stage, slowest spans, cache hit "
        "rates, strategy outcomes",
    )
    summarize_cmd.add_argument("file", help="a --trace output file (Chrome JSON or .jsonl)")
    summarize_cmd.add_argument(
        "--top", type=int, default=10, help="how many slowest spans to list"
    )
    summarize_cmd.add_argument(
        "--json", dest="json_out",
        help="write the summary as JSON to this file ('-' = stdout)",
    )
    summarize_cmd.set_defaults(func=cmd_trace_summarize)

    effort_cmd = subparsers.add_parser("effort", help="artifact-statistics table")
    effort_cmd.set_defaults(func=cmd_effort)

    casestudy_cmd = subparsers.add_parser(
        "casestudy", help="inspect and lint the case-study registry"
    )
    casestudy_sub = casestudy_cmd.add_subparsers(dest="casestudy_command", required=True)

    list_cmd = casestudy_sub.add_parser("list", help="list the registered case studies")
    list_cmd.add_argument(
        "--json", dest="json_out", help="write the JSON report to this file ('-' = stdout)"
    )
    list_cmd.set_defaults(func=cmd_casestudy_list)

    lint_cmd = casestudy_sub.add_parser(
        "lint",
        help="check studies: program parses, sites resolve, obligations collect",
    )
    lint_cmd.add_argument(
        "names", nargs="*", help="case-study names (default: the full registry)"
    )
    lint_cmd.add_argument(
        "--json", dest="json_out", help="write the JSON report to this file ('-' = stdout)"
    )
    lint_cmd.set_defaults(func=cmd_casestudy_lint)

    fuzz_cmd = subparsers.add_parser(
        "fuzz",
        help="synthesize a program corpus and differentially test the "
        "lint -> verify -> explore funnel",
    )
    fuzz_cmd.add_argument("--seed", type=int, default=0, help="generator seed")
    fuzz_cmd.add_argument(
        "--count", type=int, default=20, help="number of programs to synthesize"
    )
    fuzz_cmd.add_argument(
        "--depth", type=int, default=1, help="explore search depth per program"
    )
    fuzz_cmd.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="with N > 1, adds serial-vs-parallel discharge and explore "
        "--jobs parity legs",
    )
    fuzz_cmd.add_argument(
        "--samples",
        type=int,
        default=4,
        help="Monte Carlo samples per explore candidate",
    )
    fuzz_cmd.add_argument(
        "--divergence-dir",
        help="write shrunken reproducer fixtures (program.rlx + "
        "divergence.json) under this directory",
    )
    fuzz_cmd.add_argument(
        "--write-corpus",
        metavar="DIR",
        help="on a clean run, persist sources + fingerprints + verdicts as "
        "a committed corpus under DIR",
    )
    fuzz_cmd.add_argument(
        "--replay",
        metavar="DIR",
        help="instead of generating, re-verify a committed corpus and "
        "byte-compare outcomes",
    )
    fuzz_cmd.add_argument(
        "--json", dest="json_out", help="write the JSON report to this file ('-' = stdout)"
    )
    _add_trace_argument(fuzz_cmd)
    fuzz_cmd.set_defaults(func=cmd_fuzz)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
