#!/usr/bin/env python3
"""Water lock-elision parallelization (paper Section 5.2), end to end.

The parallel phase of Water updates a reduction array ``RS`` without locks;
lost updates make ``RS`` nondeterministic.  The acceptability property is an
integrity property: a later loop that consumes ``RS`` must not write the
``FF`` array out of bounds, even though the branch it takes depends on the
racy values.

The script verifies the property statically (the paper's 310-line Coq
proof), then simulates the racy substrate with increasing thread counts and
reports how many updates the races lose — the accuracy cost the relaxation
trades for lock-free performance — while the integrity property holds in
every run.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.casestudies.water import WaterParallelization
from repro.substrates.parallel import RacyReductionSimulator, generate_reduction_workload


def main() -> int:
    case_study = WaterParallelization()

    print("=== static verification (paper: 310 lines of Coq proof script) ===")
    report = case_study.verify()
    print(report.summary())
    if not report.verified:
        return 1

    print()
    print("=== differential simulation with the racy scheduler ===")
    summary = case_study.simulate(runs=40, seed=3)
    print(f"runs                        : {summary.runs}")
    print(f"relate violations           : {summary.relate_violations}")
    print(f"relaxed execution errors    : {summary.relaxed_errors}")
    print(f"mean |RS deviation|         : {summary.mean_metric('rs_total_absolute_deviation'):.2f}")
    print(f"mean FF cells differing     : {summary.mean_metric('ff_cells_differing'):.2f}")

    print()
    print("=== lost updates versus thread count (the relaxation's accuracy cost) ===")
    print(f"{'threads':>8}  {'lost updates':>12}  {'relative error':>15}")
    initial, updates = generate_reduction_workload(cells=8, updates_per_cell=24, seed=5)
    for threads in (1, 2, 4, 8):
        simulator = RacyReductionSimulator(threads=threads, seed=13)
        racy = simulator.run(initial, updates)
        exact = simulator.exact(initial, updates)
        lost = simulator.lost_updates
        total = sum(abs(value) for value in exact) or 1
        error = sum(abs(e - r) for e, r in zip(exact, racy)) / total
        print(f"{threads:>8}  {lost:>12}  {error:>15.3f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
