#!/usr/bin/env python3
"""LU pivot selection over approximate memory (paper Section 5.3), end to end.

The SciMark2 LU kernel's pivot search reads the matrix column from
approximate (low-power) memory, so every read may be off by up to ``e``.
The verified relate statement bounds the impact: the selected pivot value in
the relaxed execution differs from the exact pivot value by at most ``e``
(a Lipschitz-continuity property of the max reduction).

The script verifies the property (the paper's 315-line Coq proof), then
sweeps the memory error bound and measures the observed pivot deviation on
synthetic SciMark2-style columns — the accuracy envelope is always within
the verified bound.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis.metrics import MetricSeries, fraction_within
from repro.casestudies.lu import LUApproximateMemory


def main() -> int:
    print("=== static verification (paper: 315 lines of Coq proof script) ===")
    case_study = LUApproximateMemory(error_bound=2)
    report = case_study.verify()
    print(report.summary())
    if not report.verified:
        return 1

    print()
    print("=== error-bound sweep: observed pivot deviation vs verified bound ===")
    print(f"{'error bound e':>14}  {'mean |Δpivot|':>14}  {'max |Δpivot|':>13}  {'within bound':>12}")
    for bound in (0, 1, 2, 4, 8):
        study = LUApproximateMemory(error_bound=bound)
        summary = study.simulate(runs=40, seed=bound)
        deviations = MetricSeries("dev")
        observed = []
        for record in summary.records:
            if record.initial_state.scalar("e") != bound:
                continue
            deviations.add(record.metrics["pivot_deviation"])
            observed.append(record.metrics["pivot_deviation"])
        within = fraction_within(observed, bound)
        print(
            f"{bound:>14}  {deviations.mean:>14.3f}  {deviations.maximum:>13.1f}  {within:>12.2%}"
        )
    print()
    print("The observed deviation never exceeds the verified bound — the shape of")
    print("the paper's accuracy claim (the relate statement is an invariant).")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
