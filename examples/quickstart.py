#!/usr/bin/env python3
"""Quickstart: write a relaxed program, run it, and verify its acceptability.

This example walks through the full workflow of the framework on a tiny
program inspired by the paper's approximate-memory example:

1. build a relaxed program (a ``relax`` statement plus a ``relate``
   acceptability property and an ``assert`` integrity property),
2. execute it under the dynamic *original* and *relaxed* semantics and check
   the relate statement on the observed executions,
3. statically verify the acceptability properties with the axiomatic
   original (⊢o) and relaxed (⊢r) proof systems,
4. print the semantic guarantees the proofs establish.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.lang import builder as b
from repro.lang.pretty import pretty_program
from repro.hoare.verifier import AcceptabilitySpec, verify_acceptability
from repro.semantics.choosers import RandomChooser
from repro.semantics.interpreter import run_original, run_relaxed
from repro.semantics.observation import check_program_compatibility
from repro.semantics.state import State


def build_program():
    """A value read from approximate storage may deviate by at most ``e``."""
    return b.program(
        "quickstart",
        b.assume(b.ge("e", 0)),
        b.assign("y", "x"),
        b.relax("x", b.and_(b.le(b.sub("y", "e"), "x"), b.le("x", b.add("y", "e")))),
        b.relate("accuracy", b.within("x", b.r("e"))),
        b.assert_(b.le("x", b.add("y", "e"))),
        variables=("x", "y", "e"),
    )


def main() -> int:
    program = build_program()
    print("=== the relaxed program ===")
    print(pretty_program(program))

    # --- dynamic differential execution -------------------------------------
    initial = State.of({"x": 10, "e": 2})
    original = run_original(program, initial)
    relaxed = run_relaxed(program, initial, chooser=RandomChooser(seed=42))
    print("=== dynamic semantics ===")
    print(f"original execution final state : {original.state}")
    print(f"relaxed  execution final state : {relaxed.state}")
    compatibility = check_program_compatibility(
        program, original.observations, relaxed.observations
    )
    print(f"observations compatible (Γ ⊢ ψ1 ∼ ψ2): {bool(compatibility)}")

    # --- static verification --------------------------------------------------
    spec = AcceptabilitySpec(
        precondition=b.true,
        rel_precondition=b.rand(b.all_same("x", "e"), b.rge(b.r("e"), 0)),
    )
    report = verify_acceptability(program, spec)
    print()
    print("=== static verification ===")
    print(report.summary())
    return 0 if report.verified else 1


if __name__ == "__main__":
    raise SystemExit(main())
