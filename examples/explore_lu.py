#!/usr/bin/env python3
"""Exploring the relaxation space of the LU case study, end to end.

One original program induces a whole space of relaxed programs.  This
walkthrough runs the relaxation-space explorer over the LU
approximate-memory kernel (paper Section 5.3):

1. discover the relaxation sites of the program (perforable loops,
   restrictable relax envelopes, dynamic knobs) and enumerate candidate
   relaxed programs up to composition depth 2;
2. statically gate the whole generation through one pooled
   obligation-engine batch — candidates whose acceptability proof breaks
   (e.g. perforating the pivot loop desynchronises the executions) are
   rejected and never executed;
3. score the verified survivors by seeded Monte Carlo differential
   simulation (random + adversarial nondeterminism policies);
4. report the Pareto frontier over (pivot distortion, estimated savings).

A second explorer round against the same cache directory answers every
proof obligation from the cache — the engine's fingerprint cache is what
makes iterative autotuning cheap.
"""

import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.explore import explore


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-explore-") as cache_dir:
        print("=== round 1: enumerate, gate, score (cold obligation cache) ===")
        report = explore("lu", depth=2, samples=10, seed=0, cache_dir=cache_dir)
        print(report.summary())
        if not report.survivors:
            return 1

        print()
        print("=== Pareto frontier (accuracy loss vs estimated savings) ===")
        for outcome in report.frontier:
            score = outcome.score
            print(
                f"  distortion {score.distortion_mean:6.3f}  "
                f"savings {score.savings:5.3f}  {outcome.name}"
            )

        print()
        print("=== round 2: same search against the warm cache ===")
        warm = explore("lu", depth=2, samples=10, seed=0, cache_dir=cache_dir)
        print(
            f"cold hit rate {report.cache_hit_rate:.0%} -> "
            f"warm hit rate {warm.cache_hit_rate:.0%} "
            f"(verify {report.verify_seconds:.2f}s -> {warm.verify_seconds:.2f}s)"
        )
        assert warm.cache_hit_rate > report.cache_hit_rate
    return 0


if __name__ == "__main__":
    sys.exit(main())
