#!/usr/bin/env python3
"""Loop perforation with a verified accuracy bound.

Shows the relaxation *transformations* (Section 1's mechanism list): start
from an ordinary summation kernel, apply the loop-perforation transformation
from :mod:`repro.relaxations`, and then explore the performance-versus-
accuracy trade-off space the relaxed program occupies by executing it with
increasing perforation strides.

This is the workflow the paper's introduction motivates: a compiler-style
transformation produces the relaxed program, and the developer then reasons
about (or, here, measures) the accuracy of the relaxed executions.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.lang import builder as b
from repro.lang.ast import While
from repro.lang.pretty import pretty_program
from repro.relaxations import perforate_loop
from repro.semantics.choosers import FixedChoiceChooser
from repro.semantics.interpreter import run_original, run_relaxed
from repro.semantics.state import State


def build_summation_kernel():
    loop = While(
        condition=b.lt("i", "n"),
        body=b.block(
            b.assign("s", b.add("s", b.aread("A", "i"))),
            b.assign("i", b.add("i", 1)),
        ),
        invariant=b.true,
    )
    program = b.program(
        "array-sum",
        b.assign("s", 0),
        b.assign("i", 0),
        loop,
        variables=("s", "i", "n"),
        arrays=("A",),
    )
    return program, loop


def main() -> int:
    program, loop = build_summation_kernel()
    result = perforate_loop(program, loop, counter="i", max_stride=4)
    print("=== perforated program ===")
    print(pretty_program(result.program))
    print(f"transformation: {result.description}")

    values = {index: (index % 7) + 1 for index in range(64)}
    initial = State.of({"n": 64}, arrays={"A": values})

    exact = run_original(result.program, initial).state.scalar("s")
    print()
    print("=== performance vs accuracy trade-off space ===")
    print(f"{'stride':>7}  {'iterations':>11}  {'result':>8}  {'relative error':>15}")
    for stride in (1, 2, 3, 4):
        outcome = run_relaxed(
            result.program, initial, chooser=FixedChoiceChooser([{"stride": stride}])
        )
        approx = outcome.state.scalar("s")
        iterations = (64 + stride - 1) // stride
        error = abs(exact - approx) / exact
        print(f"{stride:>7}  {iterations:>11}  {approx:>8}  {error:>15.3f}")
    print()
    print("Stride 1 reproduces the original result exactly (the original execution")
    print("is one of the relaxed executions); larger strides trade accuracy for work.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
