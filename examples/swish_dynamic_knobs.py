#!/usr/bin/env python3
"""Swish++ dynamic knobs (paper Section 5.1), end to end.

Reproduces the paper's first case study on a simulated search-engine
substrate: a bursty load model drives a dynamic-knob controller that lowers
the number of presented results under load, and the verified relate
statement guarantees users always see either all results (when fewer than
10 matched) or at least the top 10.

The script verifies the acceptability property statically, then runs a load
sweep showing the accuracy/performance trade-off: fraction of ranked score
mass preserved versus formatting-loop iterations saved.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis.metrics import MetricSeries
from repro.casestudies.swish import SwishDynamicKnobs
from repro.substrates.search import generate_query_results, result_quality


def main() -> int:
    case_study = SwishDynamicKnobs()

    print("=== static verification (paper: 330 lines of Coq proof script) ===")
    report = case_study.verify()
    print(report.summary())
    if not report.verified:
        return 1

    print()
    print("=== differential simulation under bursty load ===")
    summary = case_study.simulate(runs=60, seed=7)
    print(f"runs                      : {summary.runs}")
    print(f"relate violations         : {summary.relate_violations}")
    print(f"relaxed execution errors  : {summary.relaxed_errors}")
    print(f"mean results (original)   : {summary.mean_metric('presented_original'):.2f}")
    print(f"mean results (relaxed)    : {summary.mean_metric('presented_relaxed'):.2f}")
    print(f"mean iterations saved     : {summary.mean_metric('iterations_saved'):.2f}")

    print()
    print("=== quality of results: ranked score mass preserved ===")
    quality = MetricSeries("quality")
    for record in summary.records:
        presented = int(record.metrics.get("presented_relaxed", 0))
        total = int(record.metrics.get("presented_original", 0))
        results = generate_query_results(max(total, 1), seed=11)
        quality.add(result_quality(results, presented))
    stats = quality.summary()
    print(f"mean fraction of score mass preserved : {stats['mean']:.3f}")
    print(f"minimum fraction preserved            : {stats['min']:.3f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
