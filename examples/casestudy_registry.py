#!/usr/bin/env python3
"""The case-study registry, end to end: list, lint, verify, simulate.

The corpus of verified case studies is served through a plugin registry
(`repro.casestudies.registry`).  This walkthrough:

1. lists the registered corpus (the paper's Section 5 trio plus the four
   declarative workloads) and resolves studies by name and prefix;
2. runs the `repro casestudy lint` well-formedness gate over the full
   registry — each program parses and round-trips through the
   pretty-printer, its relaxation sites apply, its obligations collect;
3. statically verifies one declarative study (the sum-reduction
   perforation kernel) and differentially simulates it, printing the
   additive-distortion-budget metrics its relate statement talks about;
4. defines, registers and verifies a brand-new study from scratch — the
   declarative path a plugin package would take (see
   docs/adding-a-case-study.md for the narrated version).
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.casestudies import (
    StudyDefinition,
    all_case_studies,
    case_study_names,
    get_case_study,
    lint_registry,
    register_case_study,
    unregister_case_study,
)
from repro.hoare.verifier import AcceptabilitySpec
from repro.semantics.state import State


def main() -> int:
    print("== the registered corpus ==")
    for cls in all_case_studies():
        study = cls()
        kind = "declarative" if hasattr(cls, "definition") else "hand-written"
        print(f"  {study.name:<26} [{kind}] (paper {study.paper_section})")
    print(f"prefix resolution: 'bnb' -> {get_case_study('bnb').name}")

    print("\n== casestudy lint over the full registry ==")
    for report in lint_registry():
        print(f"  {report.summary().splitlines()[0]}")

    print("\n== verify + simulate sum-reduction-perforation ==")
    study = get_case_study("sum-reduction-perforation")
    verification = study.verify()
    print(f"  verified: {verification.verified}")
    summary = study.simulate(runs=20, seed=7)
    print(f"  {summary.runs} differential runs, "
          f"{summary.relate_violations} relate violations")
    print(f"  mean sum dropped     : {summary.mean_metric('sum_dropped'):.2f}")
    print(f"  mean distortion budget: {summary.mean_metric('distortion_budget'):.2f}")
    print(f"  always within budget : {summary.mean_metric('within_budget') == 1.0}")

    print("\n== registering a study from scratch ==")
    definition = StudyDefinition(
        name="example-volume-dial",
        title="Volume dial on an approximate substrate",
        source="""
            vars v, original_v, e, out;
            assume(0 <= e);
            original_v = v;
            relax (v) st (original_v - e <= v && v <= original_v + e);
            out = v + v;
            relate out: (out<o> - out<r> <= 2 * e<r>
                         && out<r> - out<o> <= 2 * e<r>);
        """,
        spec=lambda program: AcceptabilitySpec(),
        workloads=lambda count, seed: [
            State.of({"v": 10 + index, "original_v": 0, "e": index % 3, "out": 0})
            for index in range(count)
        ],
    )
    register_case_study(definition)
    try:
        fresh = get_case_study("example-volume-dial")
        print(f"  registered: {fresh.name}")
        print(f"  verified  : {fresh.verify().verified}")
    finally:
        unregister_case_study("example-volume-dial")
    return 0


if __name__ == "__main__":
    sys.exit(main())
