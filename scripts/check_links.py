#!/usr/bin/env python
"""Check that markdown links in README.md and docs/ resolve.

A hermetic (offline) link checker for the docs CI job: every relative
markdown link must point at an existing file, and every in-repo anchor
(``file.md#section`` or ``#section``) must match a heading in the target
file (GitHub-style slugs).  External ``http(s)``/``mailto`` links are
ignored — CI must not depend on the network.

Usage::

    python scripts/check_links.py [FILES...]   # default: README.md docs/*.md
"""

from __future__ import annotations

import glob
import os
import re
import sys

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Inline markdown links: [text](target) — images share the syntax.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def _slugify(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, spaces to dashes."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _headings(path: str) -> set:
    with open(path, "r", encoding="utf-8") as handle:
        text = _CODE_FENCE_RE.sub("", handle.read())
    return {_slugify(match) for match in _HEADING_RE.findall(text)}


def check_file(path: str) -> list:
    """Return a list of problem strings for one markdown file."""
    problems = []
    with open(path, "r", encoding="utf-8") as handle:
        text = _CODE_FENCE_RE.sub("", handle.read())
    base_dir = os.path.dirname(os.path.abspath(path))
    for target in _LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part, _, anchor = target.partition("#")
        if file_part:
            resolved = os.path.normpath(os.path.join(base_dir, file_part))
            if not os.path.exists(resolved):
                problems.append(f"{path}: broken link {target!r} (no {resolved})")
                continue
            anchor_file = resolved
        else:
            anchor_file = os.path.abspath(path)
        if anchor and anchor_file.endswith(".md"):
            if anchor not in _headings(anchor_file):
                problems.append(
                    f"{path}: broken anchor {target!r} "
                    f"(no heading #{anchor} in {os.path.relpath(anchor_file, _ROOT)})"
                )
    return problems


def main(argv=None) -> int:
    files = (argv if argv is not None else sys.argv[1:]) or (
        [os.path.join(_ROOT, "README.md")]
        + sorted(glob.glob(os.path.join(_ROOT, "docs", "*.md")))
    )
    problems = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    checked = ", ".join(os.path.relpath(path, _ROOT) for path in files)
    if problems:
        print(f"{len(problems)} broken link(s) across {checked}")
        return 1
    print(f"all links resolve in {checked}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
