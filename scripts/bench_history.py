#!/usr/bin/env python3
"""Append benchmark key metrics to the committed trajectory file.

The benchmark suites under ``benchmarks/`` each write a JSON result file
(``bench_eval.json``, ``bench_solver.json``, ...).  Those files are
snapshots: each run overwrites the last.  This script distils the headline
metrics out of whichever result files are present and **appends** them as
one entry to ``benchmarks/trajectory.json``, which is committed — so the
repository accumulates a longitudinal record of how the key performance
numbers move PR over PR, and a regression shows up as a kink in the
series rather than a silently replaced snapshot.

Usage:

    PYTHONPATH=src python -m pytest benchmarks/ -q   # refresh snapshots
    python scripts/bench_history.py --label "PR 7"   # record them

    python scripts/bench_history.py --dry-run        # inspect, no write
    python scripts/bench_history.py --show           # print the series

The entry records the current commit, a timestamp, and one metrics block
per recognised result file.  Unrecognised or missing files are skipped
(the script never fails because a suite was not run); ``--require`` makes
missing files an error for CI use.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import subprocess
import sys
from typing import Dict, List, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_DIR = os.path.join(REPO_ROOT, "benchmarks")
TRAJECTORY_PATH = os.path.join(BENCH_DIR, "trajectory.json")

#: The headline metrics per result file, as dotted paths into its JSON.
#: Fresh (uncommitted) variants of a file are preferred when present.
KEY_METRICS: Dict[str, List[str]] = {
    "bench_eval.json": [
        "search_speedup",
        "check_speedup",
        "compiled_search_assignments_per_second",
        "prune_rate",
        "vector_search_speedup",
        "vector_rows_per_second",
    ],
    "bench_solver.json": [
        "obligations_per_second",
        "corpus_seconds",
        "bounded_search_microbench.speedup_vs_tree",
        "bounded_search_microbench.assignments_per_second",
        "bounded_search_microbench.vector.speedup_vs_compiled",
        "corpus_backend.prefilter_unsat",
    ],
    "bench_vector.json": [
        "speedup_vs_compiled",
        "rows_per_second",
        "mean_batch_rows",
        "prefilter_unsat_rate",
    ],
    "bench_telemetry.json": [
        "disabled_overhead_fraction",
        "enabled_wall_ratio",
    ],
    "bench_explore.json": [
        "cold_candidates_per_second",
        "warm_cache_hit_rate",
        "cold_session_reuse_rate",
        "depth_scaling.depth4_reuse_rate",
        "depth_scaling.depth4_wall_seconds",
        "depth_scaling.wall_ratio_vs_depth2",
    ],
    "bench_formula_core.json": [
        "substitute_ops_per_second",
        "fingerprint_warm_ops_per_second",
        "intern_hit_rate",
    ],
}


def _dig(payload: object, path: str) -> Optional[object]:
    """Resolve a dotted path into nested dicts; None when absent."""
    node = payload
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def _result_path(name: str) -> Optional[str]:
    """The freshest available result file for ``name`` (or None)."""
    stem, ext = os.path.splitext(name)
    for candidate in (f"{stem}.fresh{ext}", name):
        path = os.path.join(BENCH_DIR, candidate)
        if os.path.exists(path):
            return path
    return None


def collect_metrics(require: bool = False) -> Dict[str, Dict[str, object]]:
    """Key metrics per recognised result file present in ``benchmarks/``."""
    metrics: Dict[str, Dict[str, object]] = {}
    for name, paths in sorted(KEY_METRICS.items()):
        result_path = _result_path(name)
        if result_path is None:
            if require:
                raise SystemExit(f"required benchmark result missing: {name}")
            continue
        try:
            with open(result_path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as error:
            raise SystemExit(f"cannot read {result_path}: {error}")
        block: Dict[str, object] = {}
        for path in paths:
            value = _dig(payload, path)
            if value is not None:
                block[path] = value
        if block:
            block["source"] = os.path.basename(result_path)
            if "experiment" in payload:
                block["experiment"] = payload["experiment"]
            metrics[name] = block
    return metrics


def current_commit() -> str:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=REPO_ROOT,
                capture_output=True,
                text=True,
                check=True,
            ).stdout.strip()
        )
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def load_trajectory(path: str = TRAJECTORY_PATH) -> List[Dict[str, object]]:
    if not os.path.exists(path):
        return []
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    entries = payload.get("entries", []) if isinstance(payload, dict) else payload
    if not isinstance(entries, list):
        raise SystemExit(f"{path} is not a trajectory file")
    return entries


def save_trajectory(
    entries: List[Dict[str, object]], path: str = TRAJECTORY_PATH
) -> None:
    payload = {
        "description": (
            "Longitudinal benchmark record: one entry per recorded run, "
            "appended by scripts/bench_history.py (never rewritten)."
        ),
        "entries": entries,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def render_series(entries: List[Dict[str, object]]) -> str:
    """A compact per-metric history table across all entries."""
    if not entries:
        return "trajectory is empty"
    lines = []
    for entry in entries:
        header = f"{entry.get('recorded_at', '?')}  {entry.get('commit', '?')}"
        if entry.get("label"):
            header += f"  [{entry['label']}]"
        lines.append(header)
        for name, block in sorted(entry.get("metrics", {}).items()):
            for key, value in sorted(block.items()):
                if key in ("source", "experiment"):
                    continue
                rendered = f"{value:.4g}" if isinstance(value, float) else value
                lines.append(f"    {name}:{key} = {rendered}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="append benchmark key metrics to benchmarks/trajectory.json"
    )
    parser.add_argument("--label", default="", help="label for this entry (e.g. a PR name)")
    parser.add_argument(
        "--require",
        action="store_true",
        help="fail when a recognised benchmark result file is missing",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="print the entry that would be appended, write nothing",
    )
    parser.add_argument(
        "--show", action="store_true", help="print the recorded series and exit"
    )
    args = parser.parse_args(argv)

    if args.show:
        print(render_series(load_trajectory()))
        return 0

    metrics = collect_metrics(require=args.require)
    if not metrics:
        raise SystemExit(
            "no benchmark result files found; run the suites first "
            "(PYTHONPATH=src python -m pytest benchmarks/ -q)"
        )
    entry: Dict[str, object] = {
        "recorded_at": datetime.datetime.now(datetime.timezone.utc)
        .replace(microsecond=0)
        .isoformat(),
        "commit": current_commit(),
        "metrics": metrics,
    }
    if args.label:
        entry["label"] = args.label

    if args.dry_run:
        print(json.dumps(entry, indent=2, sort_keys=True))
        return 0

    entries = load_trajectory()
    entries.append(entry)
    save_trajectory(entries)
    print(
        f"appended entry {len(entries)} ({len(metrics)} benchmark blocks) "
        f"to {os.path.relpath(TRAJECTORY_PATH, REPO_ROOT)}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
