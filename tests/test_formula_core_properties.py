"""Property-based tests (hypothesis) for the interned formula core.

The central property is the **substitution lemma**: for capture-avoiding
substitution, evaluating ``P[t/x]`` under a valuation ``v`` agrees with
evaluating ``P`` under ``v[x := eval(t, v)]`` — including under ``exists`` /
``forall`` binders that shadow or would capture the substituted variable.
A second group checks array-store substitution (the weakest precondition of
array assignment) against direct evaluation over updated array valuations,
and a third pins the cached structural queries (``free_symbols``, ``size``)
against reference recursions after transforms.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.logic import formula as F
from repro.logic.evaluate import Valuation, evaluate, evaluate_term
from repro.logic.formula import (
    Const,
    Exists,
    Forall,
    Select,
    Store,
    SymTerm,
    conj,
    disj,
    formula_size,
    free_symbols,
    neg,
    sym,
    term_symbols,
    var,
)
from repro.logic.subst import substitute
from repro.logic.traverse import node_children
from repro.solver.normalize import to_nnf

NAMES = ["x", "y", "z"]
names = st.sampled_from(NAMES)
small_ints = st.integers(min_value=-4, max_value=4)
DOMAIN = range(-3, 4)


@st.composite
def terms(draw, depth=1):
    if depth == 0 or draw(st.booleans()):
        if draw(st.booleans()):
            return var(draw(names))
        return Const(draw(small_ints))
    op = draw(st.sampled_from([F.Add, F.Sub, F.Mul, F.Min, F.Max]))
    return op(draw(terms(depth=depth - 1)), draw(terms(depth=depth - 1)))


@st.composite
def atoms(draw):
    rel = draw(st.sampled_from([F.lt, F.le, F.gt, F.ge, F.eq, F.ne]))
    return rel(draw(terms()), draw(terms()))


@st.composite
def formulas(draw, depth=2):
    if depth == 0:
        return draw(atoms())
    choice = draw(st.integers(min_value=0, max_value=5))
    if choice == 0:
        return draw(atoms())
    if choice == 1:
        return neg(draw(formulas(depth=depth - 1)))
    if choice == 2:
        return conj(draw(formulas(depth=depth - 1)), draw(formulas(depth=depth - 1)))
    if choice == 3:
        return disj(draw(formulas(depth=depth - 1)), draw(formulas(depth=depth - 1)))
    quantifier = Exists if draw(st.booleans()) else Forall
    return quantifier(sym(draw(names)), draw(formulas(depth=depth - 1)))


def full_valuation(draw):
    return Valuation(scalars={sym(name): draw(small_ints) for name in NAMES})


# -- reference recursions -----------------------------------------------------


def ref_free(node, bound=frozenset()):
    if isinstance(node, Const) or isinstance(node, (F.TrueF, F.FalseF)):
        return frozenset()
    if isinstance(node, SymTerm):
        return frozenset() if node.symbol in bound else frozenset({node.symbol})
    if isinstance(node, (Exists, Forall)):
        return ref_free(node.body, bound | {node.symbol})
    result = frozenset()
    for child in node_children(node):
        result |= ref_free(child, bound)
    return result


def ref_size(node):
    return 1 + sum(ref_size(child) for child in node_children(node))


# -- capture-avoiding substitution under quantifiers --------------------------


class TestSubstitutionLemma:
    @settings(max_examples=120, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.data())
    def test_substitution_commutes_with_evaluation(self, data):
        formula = data.draw(formulas())
        target = sym(data.draw(names))
        replacement = data.draw(terms())
        valuation = full_valuation(data.draw)

        substituted = substitute(formula, {target: replacement})
        value = evaluate_term(replacement, valuation, DOMAIN)
        expected = evaluate(formula, valuation.with_scalar(target, value), DOMAIN)
        assert evaluate(substituted, valuation, DOMAIN) == expected

    @settings(max_examples=120, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.data())
    def test_free_symbol_equation(self, data):
        formula = data.draw(formulas())
        target = sym(data.draw(names))
        replacement = data.draw(terms())

        substituted = substitute(formula, {target: replacement})
        before = free_symbols(formula)
        expected = before - {target}
        if target in before:
            expected |= term_symbols(replacement)
        assert free_symbols(substituted) == expected

    @settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.data())
    def test_substituting_absent_symbol_is_identity(self, data):
        formula = data.draw(formulas())
        target = sym("absent")
        assert substitute(formula, {target: data.draw(terms())}) is formula

    @settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.data())
    def test_shadowed_binder_blocks_substitution(self, data):
        """``(Qx. P)[t/x]`` is ``Qx. P`` — the bound occurrence shadows."""
        name = data.draw(names)
        body = data.draw(formulas(depth=1))
        quantifier = Exists if data.draw(st.booleans()) else Forall
        formula = quantifier(sym(name), body)
        substituted = substitute(formula, {sym(name): data.draw(terms())})
        assert isinstance(substituted, quantifier)
        valuation = full_valuation(data.draw)
        assert evaluate(substituted, valuation, DOMAIN) == evaluate(formula, valuation, DOMAIN)


# -- array-store substitution -------------------------------------------------


@st.composite
def array_formulas(draw, depth=1):
    """Formulas whose atoms read ``A`` at simple indices."""
    index = var(draw(names)) if draw(st.booleans()) else Const(draw(st.integers(-2, 2)))
    read = Select(sym("A"), index)
    rel = draw(st.sampled_from([F.lt, F.le, F.eq, F.ge]))
    atom = rel(read, draw(terms()))
    if depth == 0:
        return atom
    choice = draw(st.integers(min_value=0, max_value=2))
    if choice == 0:
        return atom
    if choice == 1:
        return conj(atom, draw(array_formulas(depth=depth - 1)))
    return disj(neg(atom), draw(array_formulas(depth=depth - 1)))


class TestArrayStoreSubstitution:
    @settings(max_examples=100, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.data())
    def test_store_substitution_matches_array_update(self, data):
        """``P[store(A,i,v)/A]`` under ``V`` == ``P`` under ``V[A[i] := v]``."""
        formula = data.draw(array_formulas())
        index_term = var(data.draw(names))
        value_term = data.draw(terms())
        scalars = {sym(name): data.draw(small_ints) for name in NAMES}
        array = {cell: data.draw(small_ints) for cell in range(-9, 10)}

        substituted = substitute(
            formula, {}, arrays={sym("A"): Store(sym("A"), index_term, value_term)}
        )

        valuation = Valuation(scalars=dict(scalars), arrays={sym("A"): dict(array)})
        index = evaluate_term(index_term, valuation, DOMAIN)
        value = evaluate_term(value_term, valuation, DOMAIN)
        updated_array = dict(array)
        updated_array[index] = value
        updated = Valuation(scalars=dict(scalars), arrays={sym("A"): updated_array})

        assert evaluate(substituted, valuation, DOMAIN) == evaluate(
            formula, updated, DOMAIN
        )

    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.data())
    def test_store_substitution_free_variables(self, data):
        """Free variables grow by at most the store's index/value symbols and
        never lose the formula's own scalars."""
        formula = data.draw(array_formulas())
        index_term = var(data.draw(names))
        value_term = data.draw(terms())
        substituted = substitute(
            formula, {}, arrays={sym("A"): Store(sym("A"), index_term, value_term)}
        )
        before = free_symbols(formula)
        after = free_symbols(substituted)
        assert before <= after
        assert after <= before | term_symbols(index_term) | term_symbols(value_term)

    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.data())
    def test_store_substitution_roundtrip_without_array_reads(self, data):
        """A formula that never reads ``A`` is untouched by a store to ``A``."""
        formula = data.draw(formulas())
        substituted = substitute(
            formula, {}, arrays={sym("A"): Store(sym("A"), var("x"), Const(1))}
        )
        assert substituted is formula


# -- cached queries survive transforms ---------------------------------------


class TestCachePinning:
    @settings(max_examples=100, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.data())
    def test_free_and_size_caches_after_transforms(self, data):
        formula = data.draw(formulas())
        transformed = to_nnf(substitute(formula, {sym("x"): data.draw(terms())}))
        assert free_symbols(transformed) == ref_free(transformed)
        assert formula_size(transformed) == ref_size(transformed)

    @settings(max_examples=100, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.data())
    def test_interning_of_generated_formulas(self, data):
        formula = data.draw(formulas())
        # Rebuilding the exact same structure must produce the same object.
        rebuilt = (
            type(formula)(formula.symbol, formula.body)
            if isinstance(formula, (Exists, Forall))
            else formula
        )
        assert rebuilt is formula
