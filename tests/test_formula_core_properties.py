"""Property-based tests (hypothesis) for the interned formula core.

The central property is the **substitution lemma**: for capture-avoiding
substitution, evaluating ``P[t/x]`` under a valuation ``v`` agrees with
evaluating ``P`` under ``v[x := eval(t, v)]`` — including under ``exists`` /
``forall`` binders that shadow or would capture the substituted variable.
A second group checks array-store substitution (the weakest precondition of
array assignment) against direct evaluation over updated array valuations,
and a third pins the cached structural queries (``free_symbols``, ``size``)
against reference recursions after transforms.

The formula generators and reference recursions live in the shared
``tests/strategies.py`` module (also consumed by the relaxation-transform
and fuzz-synthesizer suites).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from strategies import (
    DOMAIN,
    NAMES,
    array_formulas,
    formulas,
    full_valuation,
    names,
    ref_free,
    ref_size,
    small_ints,
    terms,
)

from repro.logic.evaluate import Valuation, evaluate, evaluate_term
from repro.logic.formula import (
    Const,
    Exists,
    Forall,
    Store,
    formula_size,
    free_symbols,
    sym,
    term_symbols,
    var,
)
from repro.logic.subst import substitute
from repro.solver.normalize import to_nnf


# -- capture-avoiding substitution under quantifiers --------------------------


class TestSubstitutionLemma:
    @settings(max_examples=120, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.data())
    def test_substitution_commutes_with_evaluation(self, data):
        formula = data.draw(formulas())
        target = sym(data.draw(names))
        replacement = data.draw(terms())
        valuation = full_valuation(data.draw)

        substituted = substitute(formula, {target: replacement})
        value = evaluate_term(replacement, valuation, DOMAIN)
        expected = evaluate(formula, valuation.with_scalar(target, value), DOMAIN)
        assert evaluate(substituted, valuation, DOMAIN) == expected

    @settings(max_examples=120, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.data())
    def test_free_symbol_equation(self, data):
        formula = data.draw(formulas())
        target = sym(data.draw(names))
        replacement = data.draw(terms())

        substituted = substitute(formula, {target: replacement})
        before = free_symbols(formula)
        expected = before - {target}
        if target in before:
            expected |= term_symbols(replacement)
        assert free_symbols(substituted) == expected

    @settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.data())
    def test_substituting_absent_symbol_is_identity(self, data):
        formula = data.draw(formulas())
        target = sym("absent")
        assert substitute(formula, {target: data.draw(terms())}) is formula

    @settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.data())
    def test_shadowed_binder_blocks_substitution(self, data):
        """``(Qx. P)[t/x]`` is ``Qx. P`` — the bound occurrence shadows."""
        name = data.draw(names)
        body = data.draw(formulas(depth=1))
        quantifier = Exists if data.draw(st.booleans()) else Forall
        formula = quantifier(sym(name), body)
        substituted = substitute(formula, {sym(name): data.draw(terms())})
        assert isinstance(substituted, quantifier)
        valuation = full_valuation(data.draw)
        assert evaluate(substituted, valuation, DOMAIN) == evaluate(formula, valuation, DOMAIN)


# -- array-store substitution -------------------------------------------------


class TestArrayStoreSubstitution:
    @settings(max_examples=100, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.data())
    def test_store_substitution_matches_array_update(self, data):
        """``P[store(A,i,v)/A]`` under ``V`` == ``P`` under ``V[A[i] := v]``."""
        formula = data.draw(array_formulas())
        index_term = var(data.draw(names))
        value_term = data.draw(terms())
        scalars = {sym(name): data.draw(small_ints) for name in NAMES}
        array = {cell: data.draw(small_ints) for cell in range(-9, 10)}

        substituted = substitute(
            formula, {}, arrays={sym("A"): Store(sym("A"), index_term, value_term)}
        )

        valuation = Valuation(scalars=dict(scalars), arrays={sym("A"): dict(array)})
        index = evaluate_term(index_term, valuation, DOMAIN)
        value = evaluate_term(value_term, valuation, DOMAIN)
        updated_array = dict(array)
        updated_array[index] = value
        updated = Valuation(scalars=dict(scalars), arrays={sym("A"): updated_array})

        assert evaluate(substituted, valuation, DOMAIN) == evaluate(
            formula, updated, DOMAIN
        )

    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.data())
    def test_store_substitution_free_variables(self, data):
        """Free variables grow by at most the store's index/value symbols and
        never lose the formula's own scalars."""
        formula = data.draw(array_formulas())
        index_term = var(data.draw(names))
        value_term = data.draw(terms())
        substituted = substitute(
            formula, {}, arrays={sym("A"): Store(sym("A"), index_term, value_term)}
        )
        before = free_symbols(formula)
        after = free_symbols(substituted)
        assert before <= after
        assert after <= before | term_symbols(index_term) | term_symbols(value_term)

    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.data())
    def test_store_substitution_roundtrip_without_array_reads(self, data):
        """A formula that never reads ``A`` is untouched by a store to ``A``."""
        formula = data.draw(formulas())
        substituted = substitute(
            formula, {}, arrays={sym("A"): Store(sym("A"), var("x"), Const(1))}
        )
        assert substituted is formula


# -- cached queries survive transforms ---------------------------------------


class TestCachePinning:
    @settings(max_examples=100, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.data())
    def test_free_and_size_caches_after_transforms(self, data):
        formula = data.draw(formulas())
        transformed = to_nnf(substitute(formula, {sym("x"): data.draw(terms())}))
        assert free_symbols(transformed) == ref_free(transformed)
        assert formula_size(transformed) == ref_size(transformed)

    @settings(max_examples=100, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.data())
    def test_interning_of_generated_formulas(self, data):
        formula = data.draw(formulas())
        # Rebuilding the exact same structure must produce the same object.
        rebuilt = (
            type(formula)(formula.symbol, formula.body)
            if isinstance(formula, (Exists, Forall))
            else formula
        )
        assert rebuilt is formula
