"""Tests for the executable metatheory checks (Section 4)."""

import pytest

from repro.lang import builder as b
from repro.hoare.verifier import AcceptabilitySpec, verify_acceptability
from repro.metatheory import (
    check_all,
    check_original_is_relaxed_execution,
    check_original_progress,
    check_relational_assertions,
    check_relative_relaxed_progress,
    check_relaxed_progress,
    check_relaxed_progress_modulo_assumptions,
)
from repro.semantics.enumerate import EnumerationConfig
from repro.semantics.state import State


@pytest.fixture(scope="module")
def verified_program():
    """A small relaxed program verified under both proof systems."""
    program = b.program(
        "bounded-error",
        b.assume(b.ge("e", 0)),
        b.assign("y", "x"),
        b.relax("x", b.and_(b.le(b.sub("y", "e"), "x"), b.le("x", b.add("y", "e")))),
        b.relate("acc", b.within("x", b.r("e"))),
        b.assert_(b.le("x", b.add("y", "e"))),
        variables=("x", "y", "e"),
    )
    spec = AcceptabilitySpec(
        precondition=b.true,
        rel_precondition=b.rand(b.all_same("x", "e"), b.rge(b.r("e"), 0)),
    )
    report = verify_acceptability(program, spec)
    assert report.verified
    return program, report


STATES = [State.of({"x": value, "y": 0, "e": bound}) for value in (0, 3) for bound in (0, 2)]
CONFIG = EnumerationConfig(value_radius=3, max_choices_per_statement=12)


class TestChecksOnVerifiedProgram:
    def test_original_progress(self, verified_program):
        program, report = verified_program
        check = check_original_progress(program, STATES, report.original.verified, CONFIG)
        assert check.holds and check.executions_checked > 0

    def test_relational_assertions(self, verified_program):
        program, report = verified_program
        check = check_relational_assertions(program, STATES, report.relaxed.verified, CONFIG)
        assert check.holds and check.executions_checked > 0

    def test_relative_relaxed_progress(self, verified_program):
        program, report = verified_program
        check = check_relative_relaxed_progress(program, STATES, report.relaxed.verified, CONFIG)
        assert check.holds

    def test_relaxed_progress_and_corollary(self, verified_program):
        program, report = verified_program
        assert check_relaxed_progress(
            program, STATES, report.original.verified, report.relaxed.verified, CONFIG
        ).holds
        assert check_relaxed_progress_modulo_assumptions(
            program, STATES, report.original.verified, report.relaxed.verified, CONFIG
        ).holds

    def test_original_subsumed_by_relaxed(self, verified_program):
        program, _report = verified_program
        assert check_original_is_relaxed_execution(program, STATES, CONFIG).holds

    def test_check_all_report(self, verified_program):
        program, report = verified_program
        metatheory = check_all(
            program, STATES, report.original.verified, report.relaxed.verified, CONFIG
        )
        assert metatheory.all_hold
        assert "metatheory checks" in metatheory.summary()


class TestChecksDetectViolations:
    def test_unverified_assert_can_go_wrong(self):
        # An unverifiable program really does produce wr executions; if we lie
        # and claim it was verified, the check must catch the violation.
        program = b.program(
            "broken",
            b.relax("x", b.and_(b.le(0, "x"), b.le("x", 1))),
            b.assert_(b.eq("x", 0)),
            variables=("x",),
        )
        states = [State.of({"x": 0})]
        check = check_relative_relaxed_progress(program, states, True, CONFIG)
        assert not check.holds
        assert "errs" in check.counterexample

    def test_relate_violation_detected(self):
        program = b.program(
            "broken-relate",
            b.relax("x", b.and_(b.le(0, "x"), b.le("x", 1))),
            b.relate("l", b.same("x")),
            variables=("x",),
        )
        states = [State.of({"x": 0})]
        check = check_relational_assertions(program, states, True, CONFIG)
        assert not check.holds

    def test_not_applicable_when_unverified(self):
        program = b.program("p", b.assert_(b.false), variables=())
        check = check_original_progress(program, [State.of({})], False, CONFIG)
        assert check.holds and "not applicable" in check.counterexample
