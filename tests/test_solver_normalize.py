"""Tests for the normalisation passes: term elimination, NNF, DNF, Ackermann."""

import pytest

from repro.logic import formula as F
from repro.logic.formula import (
    Const,
    Divides,
    Exists,
    Forall,
    Ite,
    Max,
    Min,
    Not,
    Or,
    Select,
    Symbol,
    conj,
    disj,
    exists,
    forall,
    free_symbols,
    implies,
    neg,
    sym,
    var,
)
from repro.logic.evaluate import Valuation, evaluate
from repro.solver.normalize import (
    FormulaTooLargeError,
    UnsupportedFormulaError,
    ackermannize,
    eliminate_compound_terms,
    has_universal,
    strip_positive_existentials,
    to_dnf,
    to_nnf,
)


def assert_equivalent_on_box(original, transformed, names, radius=3):
    """Check semantic equivalence of two formulas over a small box."""
    import itertools

    domain = range(-radius - 2, radius + 3)
    for values in itertools.product(range(-radius, radius + 1), repeat=len(names)):
        valuation = Valuation(scalars={sym(name): value for name, value in zip(names, values)})
        assert evaluate(original, valuation, domain) == evaluate(
            transformed, valuation, domain
        ), f"differ at {dict(zip(names, values))}"


class TestCompoundTermElimination:
    def test_min_elimination_preserves_semantics(self):
        formula = F.le(Min(var("x"), var("y")), var("x"))
        transformed = eliminate_compound_terms(formula)
        assert "min" not in str(transformed)
        assert_equivalent_on_box(formula, transformed, ["x", "y"])

    def test_max_elimination_preserves_semantics(self):
        formula = F.eq(Max(var("x"), var("y")), var("y"))
        transformed = eliminate_compound_terms(formula)
        assert_equivalent_on_box(formula, transformed, ["x", "y"])

    def test_ite_elimination(self):
        formula = F.gt(Ite(F.lt(var("x"), Const(0)), Const(-1), Const(1)), Const(0))
        transformed = eliminate_compound_terms(formula)
        assert "ite" not in str(transformed)
        assert_equivalent_on_box(formula, transformed, ["x"])

    def test_div_elimination_introduces_quantifier(self):
        formula = F.eq(F.Div(var("x"), Const(2)), Const(1))
        transformed = eliminate_compound_terms(formula)
        assert "exists" in str(transformed)
        assert_equivalent_on_box(formula, transformed, ["x"], radius=5)

    def test_mod_elimination_preserves_semantics(self):
        formula = F.eq(F.Mod(var("x"), Const(3)), Const(2))
        transformed = eliminate_compound_terms(formula)
        assert_equivalent_on_box(formula, transformed, ["x"], radius=7)

    def test_division_by_variable_unsupported(self):
        with pytest.raises(UnsupportedFormulaError):
            eliminate_compound_terms(F.eq(F.Div(var("x"), var("y")), Const(0)))

    def test_division_by_zero_unsupported(self):
        with pytest.raises(UnsupportedFormulaError):
            eliminate_compound_terms(F.eq(F.Div(var("x"), Const(0)), Const(0)))


class TestNNF:
    def test_negated_comparison_flips_relation(self):
        formula = neg(F.lt(var("x"), Const(0)))
        assert str(to_nnf(formula)) == "(x >= 0)"

    def test_implication_expansion(self):
        formula = implies(F.lt(var("x"), 0), F.lt(var("y"), 0))
        nnf = to_nnf(formula)
        assert "==>" not in str(nnf)

    def test_negation_of_conjunction(self):
        formula = neg(conj(F.lt(var("x"), 0), F.gt(var("y"), 0)))
        nnf = to_nnf(formula)
        assert isinstance(nnf, Or)

    def test_quantifier_duality(self):
        formula = neg(forall(sym("x"), F.ge(var("x"), 0)))
        nnf = to_nnf(formula)
        assert isinstance(nnf, Exists)

    def test_iff_expansion_semantics(self):
        formula = F.iff(F.gt(var("x"), 0), F.gt(var("y"), 0))
        assert_equivalent_on_box(formula, to_nnf(formula), ["x", "y"])

    def test_negated_divides_kept(self):
        formula = neg(Divides(2, var("x")))
        nnf = to_nnf(formula)
        assert isinstance(nnf, Not)


class TestSkolemisation:
    def test_positive_existentials_removed(self):
        formula = exists(sym("k"), F.eq(var("x"), var("k") * Const(2)))
        stripped = strip_positive_existentials(to_nnf(formula))
        assert "exists" not in str(stripped)
        assert len(free_symbols(stripped)) == 2

    def test_universals_left_in_place(self):
        formula = forall(sym("k"), F.ge(var("k"), var("x")))
        stripped = strip_positive_existentials(to_nnf(formula))
        assert has_universal(stripped)

    def test_has_universal_false_for_qf(self):
        assert not has_universal(to_nnf(F.lt(var("x"), 0)))


class TestDNF:
    def test_simple_distribution(self):
        formula = conj(disj(F.lt(var("x"), 0), F.gt(var("x"), 5)), F.eq(var("y"), 1))
        cubes = to_dnf(to_nnf(formula))
        assert len(cubes) == 2
        assert all(len(cube) == 2 for cube in cubes)

    def test_true_and_false(self):
        assert to_dnf(F.TRUE) == [()]
        assert to_dnf(F.FALSE) == []

    def test_size_cap(self):
        disjuncts = [disj(F.eq(var(f"x{i}"), 0), F.eq(var(f"x{i}"), 1)) for i in range(12)]
        with pytest.raises(FormulaTooLargeError):
            to_dnf(conj(*disjuncts), max_cubes=64)


class TestAckermann:
    def test_no_arrays_is_identity(self):
        formula = F.lt(var("x"), 0)
        result = ackermannize(formula)
        assert result.formula == formula
        assert result.constraints == F.TRUE

    def test_consistency_constraints_generated(self):
        array = Symbol("A")
        formula = conj(
            F.eq(Select(array, var("i")), Const(1)),
            F.eq(Select(array, var("j")), Const(2)),
        )
        result = ackermannize(formula)
        assert len(result.select_map) == 2
        assert "==>" in str(result.constraints)

    def test_quantified_index_rejected(self):
        array = Symbol("A")
        formula = exists(sym("i"), F.eq(Select(array, var("i")), Const(0)))
        with pytest.raises(UnsupportedFormulaError):
            ackermannize(formula)
