"""Tests for the cube solver (Fourier–Motzkin + branch-and-bound core)."""

import pytest

from repro.logic import formula as F
from repro.logic.formula import Atom, Const, Divides, Not, Rel, sym, var
from repro.solver.lia import CubeSolver, Divisibility, Inequality, Status
from repro.solver.linear import LinearTerm, NonLinearError


def atom(rel, left, right):
    return Atom(rel, left, right)


class TestInequalityTighten:
    def test_divides_by_gcd(self):
        ineq = Inequality(LinearTerm.of({sym("x"): 2, sym("y"): 4}, 3)).tighten()
        assert ineq.term.coefficient(sym("x")) == 1
        assert ineq.term.coefficient(sym("y")) == 2
        assert ineq.term.constant == 2  # ceil(3/2)

    def test_unit_content_unchanged(self):
        ineq = Inequality(LinearTerm.of({sym("x"): 1}, 3))
        assert ineq.tighten() == ineq


class TestCubeSolver:
    def test_feasible_box(self):
        solver = CubeSolver()
        cube = [
            atom(Rel.GE, var("x"), Const(2)),
            atom(Rel.LE, var("x"), Const(5)),
            atom(Rel.EQ, var("y"), var("x") + 1),
        ]
        result = solver.solve(cube)
        assert result.status is Status.SAT
        assert 2 <= result.model[sym("x")] <= 5
        assert result.model[sym("y")] == result.model[sym("x")] + 1

    def test_infeasible_bounds(self):
        solver = CubeSolver()
        cube = [atom(Rel.GT, var("x"), Const(5)), atom(Rel.LT, var("x"), Const(3))]
        assert solver.solve(cube).status is Status.UNSAT

    def test_integer_gap_detected(self):
        # 2x == 2y + 1 has no integer solutions.
        solver = CubeSolver()
        cube = [atom(Rel.EQ, var("x") * Const(2), var("y") * Const(2) + Const(1))]
        assert solver.solve(cube).status is Status.UNSAT

    def test_gcd_test_on_equalities(self):
        solver = CubeSolver()
        cube = [atom(Rel.EQ, var("x") * Const(6) + var("y") * Const(4), Const(3))]
        assert solver.solve(cube).status is Status.UNSAT

    def test_disequality_split(self):
        solver = CubeSolver()
        cube = [
            atom(Rel.GE, var("x"), Const(0)),
            atom(Rel.LE, var("x"), Const(1)),
            atom(Rel.NE, var("x"), Const(0)),
        ]
        result = solver.solve(cube)
        assert result.status is Status.SAT
        assert result.model[sym("x")] == 1

    def test_divisibility_constraint(self):
        solver = CubeSolver()
        cube = [
            Divides(3, var("x")),
            atom(Rel.GE, var("x"), Const(4)),
            atom(Rel.LE, var("x"), Const(8)),
        ]
        result = solver.solve(cube)
        assert result.status is Status.SAT
        assert result.model[sym("x")] == 6

    def test_negated_divisibility(self):
        solver = CubeSolver()
        cube = [
            Not(Divides(2, var("x"))),
            atom(Rel.GE, var("x"), Const(4)),
            atom(Rel.LE, var("x"), Const(5)),
        ]
        result = solver.solve(cube)
        assert result.status is Status.SAT
        assert result.model[sym("x")] == 5

    def test_conflicting_divisibility(self):
        solver = CubeSolver()
        cube = [Divides(2, var("x")), Not(Divides(2, var("x")))]
        assert solver.solve(cube).status is Status.UNSAT

    def test_unbounded_variable_gets_some_value(self):
        solver = CubeSolver()
        result = solver.solve([atom(Rel.GE, var("x"), var("y"))])
        assert result.status is Status.SAT

    def test_nonlinear_literal_raises(self):
        solver = CubeSolver()
        with pytest.raises(NonLinearError):
            solver.solve([atom(Rel.EQ, var("x") * var("y"), Const(1))])

    def test_statistics_populated(self):
        solver = CubeSolver()
        solver.solve([atom(Rel.LE, var("x"), Const(0))])
        assert solver.statistics["cubes"] == 1
        assert solver.statistics["branch_nodes"] >= 1

    def test_equality_without_unit_coefficient(self):
        # 2x == 6 is satisfiable with x == 3 even though no unit coefficient exists.
        solver = CubeSolver()
        result = solver.solve([atom(Rel.EQ, var("x") * Const(2), Const(6))])
        assert result.status is Status.SAT
        assert result.model[sym("x")] == 3

    def test_large_coefficient_system(self):
        solver = CubeSolver()
        cube = [
            atom(Rel.EQ, var("x") * Const(7) + var("y") * Const(5), Const(41)),
            atom(Rel.GE, var("x"), Const(0)),
            atom(Rel.GE, var("y"), Const(0)),
        ]
        result = solver.solve(cube)
        assert result.status is Status.SAT
        model = result.model
        assert 7 * model[sym("x")] + 5 * model[sym("y")] == 41
