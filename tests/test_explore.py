"""Tests for the relaxation-space explorer (repro.explore)."""

import json

import pytest

from repro.casestudies.lu import LUApproximateMemory
from repro.cli import main
from repro.engine import ObligationEngine, program_items, verify_batch
from repro.explore import (
    enumerate_candidates,
    estimated_savings,
    explore,
    pareto_flags,
    program_fingerprint,
    resolve_case_study,
    score_candidate,
)
from repro.explore.candidates import Candidate
from repro.hoare.verifier import AcceptabilitySpec
from repro.lang import builder as b


class TestFingerprint:
    def test_name_independent(self):
        one = b.program("one", b.assign("x", 1), variables=("x",))
        two = b.program("two", b.assign("x", 1), variables=("x",))
        assert program_fingerprint(one) == program_fingerprint(two)

    def test_body_sensitive(self):
        one = b.program("p", b.assign("x", 1), variables=("x",))
        two = b.program("p", b.assign("x", 2), variables=("x",))
        assert program_fingerprint(one) != program_fingerprint(two)

    def test_declaration_sensitive(self):
        one = b.program("p", b.assign("x", 1), variables=("x",))
        two = b.program("p", b.assign("x", 1), variables=("x", "y"))
        assert program_fingerprint(one) != program_fingerprint(two)


class TestEnumeration:
    def test_depth_zero_is_baseline_only(self):
        case = LUApproximateMemory()
        program = case.build_program()
        enumeration = enumerate_candidates(program, case.relaxation_sites, depth=0)
        assert [candidate.depth for candidate in enumeration.candidates] == [0]
        assert enumeration.candidates[0].program is program

    def test_depth_one_covers_every_site(self):
        case = LUApproximateMemory()
        program = case.build_program()
        sites = case.relaxation_sites(program)
        enumeration = enumerate_candidates(program, case.relaxation_sites, depth=1)
        assert len(enumeration.candidates) == 1 + len(sites)
        names = [candidate.name for candidate in enumeration.candidates]
        assert len(names) == len(set(names))

    def test_depth_two_composes_and_dedups(self):
        case = LUApproximateMemory()
        program = case.build_program()
        enumeration = enumerate_candidates(
            program, case.relaxation_sites, depth=2, max_candidates=64
        )
        assert any(candidate.depth == 2 for candidate in enumeration.candidates)
        fingerprints = [c.fingerprint for c in enumeration.candidates]
        assert len(fingerprints) == len(set(fingerprints))

    def test_cap_is_reported_not_silent(self):
        case = LUApproximateMemory()
        program = case.build_program()
        enumeration = enumerate_candidates(
            program, case.relaxation_sites, depth=2, max_candidates=3
        )
        assert len(enumeration.candidates) == 3
        assert enumeration.capped > 0

    def test_invalid_parameters(self):
        case = LUApproximateMemory()
        program = case.build_program()
        with pytest.raises(ValueError):
            enumerate_candidates(program, case.relaxation_sites, depth=-1)
        with pytest.raises(ValueError):
            enumerate_candidates(program, case.relaxation_sites, max_candidates=0)


class TestPareto:
    def test_frontier_flags(self):
        points = [(0.0, 0.0), (1.0, 0.5), (2.0, 0.4), (2.0, 0.9)]
        assert pareto_flags(points) == [True, True, False, True]

    def test_duplicates_both_kept(self):
        assert pareto_flags([(1.0, 0.5), (1.0, 0.5)]) == [True, True]

    def test_empty(self):
        assert pareto_flags([]) == []


class TestScoring:
    def test_savings_bounds(self):
        assert estimated_savings(0.0, 0.0) == 0.0
        assert 0.0 < estimated_savings(0.0, 4.0) < 0.5
        assert estimated_savings(1.0, 100.0) == 1.0

    def test_score_baseline_lu(self):
        case = LUApproximateMemory()
        program = case.build_program()
        score = score_candidate(case, program, samples=4, seed=0)
        assert score.samples == 8  # 4 workloads x 2 policies
        assert score.errors == 0
        assert score.relate_violations == 0
        assert score.distortion_max <= 8  # never beyond the largest error bound
        assert 0.0 <= score.savings <= 1.0

    def test_score_is_reproducible(self):
        case = LUApproximateMemory()
        program = case.build_program()
        one = score_candidate(case, program, samples=4, seed=7)
        two = score_candidate(case, program, samples=4, seed=7)
        assert one.as_dict() == two.as_dict()


class TestExplorePipeline:
    def test_lu_depth_one(self, tmp_path):
        report = explore("lu", depth=1, samples=4, seed=0)
        assert report.candidates >= 5
        rejected = [o for o in report.outcomes if not o.verified]
        assert rejected, "expected at least one statically rejected candidate"
        # Statically rejected candidates are never scored (the gate is hard).
        assert all(outcome.score is None for outcome in rejected)
        assert all(outcome.score is not None for outcome in report.survivors)
        assert report.frontier
        payload = report.as_dict()
        assert payload["candidates"] == report.candidates
        assert "cache" in payload and "engine" in payload
        csv_text = report.to_csv()
        assert csv_text.count("\n") == report.candidates + 1

    def test_rejected_candidates_carry_failure_attribution(self):
        report = explore("lu", depth=1, samples=2, seed=0)
        rejected = [
            o for o in report.outcomes if not o.verified and not o.error
        ]
        assert rejected, "expected statically rejected candidates"
        for outcome in rejected:
            assert outcome.failures, f"{outcome.name} has no failure attribution"
            failure = outcome.failures[0]
            # Attribution names the rule, the source location and the sites
            # of *this* candidate, so rejections are debuggable per row.
            assert failure["rule"]
            assert failure["location"].startswith("line")
            assert failure["sites"] == list(outcome.candidate.site_ids)
            assert failure["status"] in ("invalid", "unknown", "unsat")
        # Survivors carry none, and the JSON only includes the key when set.
        for outcome in report.survivors:
            assert outcome.failures == []
            assert "failures" not in outcome.as_dict()
        assert "failures" in rejected[0].as_dict()

    def test_warm_cache_round_has_strictly_higher_hit_rate(self, tmp_path):
        cache_dir = str(tmp_path / "explore-cache")
        first = explore("lu", depth=1, samples=2, seed=0, cache_dir=cache_dir)
        second = explore("lu", depth=1, samples=2, seed=0, cache_dir=cache_dir)
        assert second.cache_hit_rate > first.cache_hit_rate
        assert second.cache_hit_rate == 1.0
        # The same candidates verify either way.
        assert [o.verified for o in second.outcomes] == [
            o.verified for o in first.outcomes
        ]

    def test_resolve_case_study(self):
        assert resolve_case_study("lu").name == "lu-approximate-memory"
        assert resolve_case_study("lu-approximate-memory").name == "lu-approximate-memory"
        with pytest.raises(ValueError):
            resolve_case_study("nonexistent")

    def test_program_items_carries_construction_failures(self):
        items = program_items([("broken", None, AcceptabilitySpec())])
        report = verify_batch(items, engine=ObligationEngine())
        assert not report.all_verified
        assert report.programs[0].error


class TestExploreCli:
    def test_explore_command_json_and_csv(self, tmp_path, capsys):
        json_path = tmp_path / "explore.json"
        csv_path = tmp_path / "explore.csv"
        exit_code = main(
            [
                "explore",
                "lu",
                "--depth",
                "1",
                "--samples",
                "2",
                "--json",
                str(json_path),
                "--csv",
                str(csv_path),
            ]
        )
        assert exit_code == 0
        payload = json.loads(json_path.read_text())
        assert payload["candidates"] >= 5
        assert payload["verified_candidates"] >= 1
        assert payload["pareto_candidates"]
        assert "hits" in payload["cache"] and "misses" in payload["cache"]
        rejected = [r for r in payload["results"] if not r["verified"]]
        assert rejected and all(r["score"] is None for r in rejected)
        assert csv_path.read_text().startswith("name,depth,sites")

    def test_explore_depth_zero_baseline(self, capsys):
        assert main(["explore", "lu", "--depth", "0", "--samples", "2"]) == 0

    def test_explore_unknown_case_study(self):
        with pytest.raises(SystemExit):
            main(["explore", "nonexistent", "--depth", "0"])

    def test_explore_rejects_bad_flags(self):
        with pytest.raises(SystemExit):
            main(["explore", "lu", "--depth", "-1"])
        with pytest.raises(SystemExit):
            main(["explore", "lu", "--samples", "0"])
