"""The differential funnel: parity legs, divergence shrinking, reproducers.

A small fixed-seed corpus runs the real funnel end-to-end (this is the
CI ``fuzz-smoke`` job's little sibling); the shrinking and fixture-writing
machinery is additionally exercised on a *synthetic* divergence, since a
healthy tree never produces a real one.
"""

import json
from pathlib import Path

import pytest

from repro.fuzz import (
    GeneratedStudy,
    ProgramSynthesizer,
    run_fuzz,
    shrink_program,
    synthesize_corpus,
)
from repro.fuzz.funnel import (
    Divergence,
    VerifySignature,
    available_backends,
    compare_signatures,
    verify_leg,
)
from repro.fuzz.shrink import shrink_source, write_reproducer
from repro.lang.parser import parse_program


@pytest.fixture(scope="module")
def report():
    return run_fuzz(seed=11, count=6, depth=1, jobs=2, samples=3)


class TestFunnel:
    def test_funnel_is_divergence_free(self, report):
        assert report.ok, report.summary()
        assert report.lint_failures == 0
        assert not report.expectation_failures

    def test_all_parity_legs_ran(self, report):
        legs = set(report.verify_legs)
        assert "backend=tree" in legs
        assert "backend=compiled" in legs
        assert "backend=compiled,jobs=2" in legs
        assert "cache=cold" in legs and "cache=warm" in legs
        if "vector" in available_backends():
            assert "backend=vector" in legs

    def test_every_program_completed_every_stage(self, report):
        assert len(report.programs) == 6
        for record in report.programs:
            assert record.lint_ok
            assert record.obligations > 0
            assert len(record.obligations_digest) == 16
            assert record.explore_candidates > 0

    def test_report_round_trips_through_json(self, report):
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["ok"] is True
        assert payload["count"] == 6
        assert len(payload["programs"]) == 6


class TestVerifyLegs:
    def test_legs_agree_signature_by_signature(self):
        generated = synthesize_corpus(5, 4)
        left = verify_leg(generated, backend="tree")
        right = verify_leg(generated, backend="compiled")
        for item in generated:
            assert (
                compare_signatures(
                    item.name, "tree", left[item.name], "compiled", right[item.name]
                )
                is None
            )

    def test_compare_signatures_reports_first_mismatch(self):
        a = VerifySignature(
            verified=True, error="", fingerprints=("f1",), statuses=("valid",),
            models=(None,),
        )
        b = VerifySignature(
            verified=False, error="", fingerprints=("f1",), statuses=("invalid",),
            models=((("x", "0"),),),
        )
        divergence = compare_signatures("p", "left", a, "right", b)
        assert divergence is not None
        assert divergence.stage == "verify"
        assert "verdict" in divergence.detail


class TestShrinking:
    def test_shrink_deletes_every_non_load_bearing_statement(self):
        generated = ProgramSynthesizer(0).generate(1)
        # Synthetic oracle: "diverges" iff the program still contains a
        # relax statement.  Everything else should be shrunk away.
        def still_fails(source):
            return "relax" in source

        shrunk = shrink_source(generated.source, still_fails)
        assert "relax" in shrunk
        assert len(shrunk) < len(generated.source)
        assert "while" not in shrunk  # loops are not load-bearing here
        parse_program(shrunk)  # still well-formed concrete syntax

    def test_shrink_program_keeps_failing_predicate_true(self):
        generated = ProgramSynthesizer(3).generate(0)

        def still_fails(source):
            return "assume" in source

        shrunk = shrink_program(generated.program, still_fails)
        from repro.lang.pretty import pretty_program

        assert "assume" in pretty_program(shrunk)

    def test_shrink_survives_crashing_predicate(self):
        generated = ProgramSynthesizer(3).generate(2)

        def boom(source):
            raise RuntimeError("oracle crashed")

        shrunk = shrink_program(generated.program, boom)
        # A crashing oracle counts as "does not fail": nothing is deleted.
        assert shrunk == generated.program

    def test_write_reproducer_fixture_layout(self, tmp_path):
        divergence = Divergence(
            program="fuzz-s0-0001",
            stage="verify",
            left="backend=compiled",
            right="backend=tree",
            detail="obligation statuses differ",
            left_value=["valid"],
            right_value=["invalid"],
            shrunk_source="// program: fuzz-s0-0001\nvars x;\nx = 1;\n",
        )
        fixture = Path(write_reproducer(str(tmp_path), divergence))
        assert (fixture / "program.rlx").read_text().startswith("// program")
        record = json.loads((fixture / "divergence.json").read_text())
        assert record["stage"] == "verify"
        assert record["left"] == "backend=compiled"
        assert record["shrunk_source"]


class TestGeneratedStudyAdapter:
    def test_workloads_satisfy_generated_assumes(self):
        generated = ProgramSynthesizer(2).generate(0)
        study = GeneratedStudy.of(generated)
        program = study.build_program()
        for state in study.workloads(5, seed=1):
            for name in program.variables:
                assert 1 <= state.scalar(name) <= 4

    def test_workloads_are_seed_deterministic(self):
        generated = ProgramSynthesizer(2).generate(1)
        study = GeneratedStudy.of(generated)
        assert study.workloads(3, seed=9) == study.workloads(3, seed=9)
        assert study.workloads(3, seed=9) != study.workloads(3, seed=10)
