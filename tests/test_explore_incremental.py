"""Incremental re-verification + guided frontier search (repro.explore).

Covers the search-session verdict store (obligations settled once per
search, UNKNOWN replay included), the generational explorer's strategy
parity guarantee — a beam wide enough to hold every generation produces
byte-identical verified sets, Pareto frontiers, obligation fingerprints
and verdicts to the exhaustive walk, for every registered case study —
the warm-cache zero-solver-call property, the frontier scheduler, and the
fixed cap-accounting semantics of candidate enumeration.

The parity property runs each study at the deepest affordable
configuration: depth 2 for the cheap studies, depth 1 with a tight
candidate cap for the two whose relaxed children take tens of solver
seconds each (stencil, pipeline).  Both strategy runs share one persistent
cache directory so the second run answers conclusive obligations without
solver calls — verdicts are unaffected (the cache replays, never decides).
"""

import json

import pytest

from repro.cli import main
from repro.engine import VerdictStore
from repro.explore import (
    STRATEGIES,
    CandidateSpace,
    FrontierScheduler,
    RewardTable,
    enumerate_candidates,
    explore,
)
from repro.casestudies.lu import LUApproximateMemory
from repro.hoare.obligations import (
    ObligationKind,
    ObligationResult,
    ProofObligation,
    ProofSystem,
)
from repro.logic.formula import eq, sym, var
from repro.solver.lia import Status


def _obligation(value: int) -> ProofObligation:
    return ProofObligation(
        formula=eq(var(sym("x")), value),
        kind=ObligationKind.SATISFIABILITY,
        system=ProofSystem.ORIGINAL,
        rule="test",
        description="test obligation",
    )


class TestVerdictStore:
    def test_records_and_replays(self):
        store = VerdictStore()
        obligation = _obligation(1)
        assert store.get("key") is None
        store.record(
            "key",
            ObligationResult(
                obligation=obligation,
                status=Status.SAT,
                counterexample={sym("x"): 1},
                elapsed_seconds=0.5,
                reason="found model",
            ),
        )
        verdict = store.get("key")
        assert verdict is not None
        assert verdict.status is Status.SAT
        assert verdict.model == {sym("x"): 1}
        assert verdict.reason == "found model"

    def test_replays_unknown_verdicts(self):
        # Unlike the persistent cache (which refuses UNKNOWN so bigger
        # budgets can retry), the session store replays it — matching the
        # engine's in-wave dedup contract, which is what keeps a
        # generational search byte-identical to a single exhaustive wave.
        store = VerdictStore()
        store.record(
            "key",
            ObligationResult(
                obligation=_obligation(1), status=Status.UNKNOWN, reason="budget"
            ),
        )
        verdict = store.get("key")
        assert verdict is not None
        assert verdict.status is Status.UNKNOWN

    def test_counters_partition_the_total(self):
        store = VerdictStore()
        result = ObligationResult(obligation=_obligation(1), status=Status.SAT)
        store.record("a", result)
        store.record("b", result)
        assert store.get("a") is not None
        assert store.get("a") is not None
        assert store.get("missing") is None
        assert store.reused == 2
        assert store.delta == 2
        assert store.total == 4
        assert store.reuse_rate == 0.5
        stats = store.stats()
        assert stats["reused"] == 2.0
        assert stats["delta_obligations"] == 2.0
        assert stats["total_obligations"] == 4.0
        assert stats["store_entries"] == 2.0
        assert len(store) == 2

    def test_peek_does_not_count(self):
        store = VerdictStore()
        store.record("a", ObligationResult(obligation=_obligation(1), status=Status.SAT))
        assert store.peek("a") is not None
        assert store.peek("missing") is None
        assert store.reused == 0


class TestRewardTable:
    def test_untried_kind_is_optimistic(self):
        table = RewardTable()
        assert table.expected("perforate-loop") == 1.0

    def test_mean_reward(self):
        table = RewardTable()
        table.record("dynamic-knob", 0.4)
        table.record("dynamic-knob", 0.2)
        assert table.expected("dynamic-knob") == pytest.approx(0.3)
        payload = table.as_dict()
        assert payload["dynamic-knob"]["count"] == 2.0
        assert payload["dynamic-knob"]["mean"] == pytest.approx(0.3)


class TestFrontierScheduler:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            FrontierScheduler(strategy="random")
        with pytest.raises(ValueError):
            FrontierScheduler(strategy="beam", beam_width=0)
        assert set(STRATEGIES) == {"exhaustive", "beam"}

    def test_exhaustive_keeps_everything(self):
        scheduler = FrontierScheduler(strategy="exhaustive", beam_width=1)
        outcomes = list(range(10))  # select() is shape-agnostic on this path
        assert scheduler.select(outcomes) == outcomes
        assert scheduler.pruned == 0

    def test_beam_truncates_and_preserves_discovery_order(self):
        class FakeSite:
            kind = "dynamic-knob"

        class FakeCandidate:
            def __init__(self, applied):
                self.applied = applied

        class FakeScore:
            def __init__(self, savings):
                self.savings = savings

        class FakeOutcome:
            def __init__(self, verified, savings):
                self.candidate = FakeCandidate((FakeSite(),))
                self.verified = verified
                self.score = FakeScore(savings) if savings is not None else None

        outcomes = [
            FakeOutcome(True, 0.1),
            FakeOutcome(False, None),
            FakeOutcome(True, 0.9),
            FakeOutcome(True, 0.5),
        ]
        scheduler = FrontierScheduler(strategy="beam", beam_width=2)
        kept = scheduler.select(outcomes)
        # The two best verified outcomes survive, returned in discovery
        # order (index 2 before 3 would be wrong: 2 ranks first but was
        # discovered after 0; kept order must follow discovery).
        assert kept == [outcomes[2], outcomes[3]]
        assert scheduler.pruned == 2
        # Unverified candidates rank below every verified one.
        narrow = FrontierScheduler(strategy="beam", beam_width=3)
        assert narrow.select(outcomes) == [outcomes[0], outcomes[2], outcomes[3]]

    def test_wide_beam_is_exhaustive(self):
        scheduler = FrontierScheduler(strategy="beam", beam_width=100)
        outcomes = list(range(10))
        assert scheduler.select(outcomes) == outcomes
        assert scheduler.pruned == 0


class TestCapAccounting:
    def test_capped_counts_distinct_skipped_applications_once(self):
        case = LUApproximateMemory()
        program = case.build_program()
        sites = case.relaxation_sites(program)
        enumeration = enumerate_candidates(
            program, case.relaxation_sites, depth=2, max_candidates=3
        )
        assert len(enumeration.candidates) == 3
        # The cap bit while expanding generation 1: the first two site
        # applications were admitted, the rest of the baseline's sites were
        # skipped — each distinct (parent, site) application counted once.
        # Generation 2 was never expanded; phantom deeper skips are a
        # consequence of the cap, not additional distinct work.
        assert enumeration.capped == len(sites) - 2

    def test_cap_stops_deeper_generations(self):
        case = LUApproximateMemory()
        program = case.build_program()
        space = CandidateSpace(program, case.relaxation_sites, max_candidates=3)
        first = space.expand([space.baseline], level=1)
        assert len(first) == 2
        assert space.exhausted
        assert space.expand(first, level=2) == []
        capped_after_stop = space.capped
        # Re-expanding after exhaustion never inflates the count.
        assert space.expand(first, level=3) == []
        assert space.capped == capped_after_stop

    def test_parent_links(self):
        case = LUApproximateMemory()
        program = case.build_program()
        enumeration = enumerate_candidates(
            program, case.relaxation_sites, depth=2, max_candidates=64
        )
        baseline = enumeration.candidates[0]
        assert baseline.parent_fingerprint == ""
        by_fingerprint = {c.fingerprint: c for c in enumeration.candidates}
        for candidate in enumeration.candidates[1:]:
            parent = by_fingerprint[candidate.parent_fingerprint]
            assert parent.depth == candidate.depth - 1
            assert candidate.site_ids[:-1] == parent.site_ids


#: Per-study parity configuration: the deepest depth/cap affordable in a
#: tier-1 run.  The stencil and pipeline studies verify relaxed children in
#: tens of solver seconds each, so they run shallow and tightly capped.
PARITY_CONFIGS = {
    "swish-dynamic-knobs": dict(depth=2, max_candidates=12),
    "water-parallelization": dict(depth=2, max_candidates=48),
    "lu-approximate-memory": dict(depth=2, max_candidates=48),
    "sum-reduction-perforation": dict(depth=2, max_candidates=48),
    "bnb-early-exit": dict(depth=2, max_candidates=48),
    "stencil-approx-memory": dict(depth=1, max_candidates=2),
    "pipeline-two-knobs": dict(depth=1, max_candidates=48),
}


def _signature(report):
    """Everything parity is stated over, per candidate in discovery order."""
    return [
        (
            outcome.candidate.fingerprint,
            outcome.candidate.parent_fingerprint,
            outcome.verified,
            outcome.pareto,
            outcome.obligation_fingerprints,
            outcome.obligation_statuses,
            outcome.obligations_digest(),
        )
        for outcome in report.outcomes
    ]


class TestStrategyParity:
    def test_every_registered_study_is_covered(self):
        from repro.casestudies import all_case_studies

        registered = {cls().name for cls in all_case_studies()}
        assert registered == set(PARITY_CONFIGS), (
            "every registered case study needs a parity configuration; "
            "update PARITY_CONFIGS for new studies"
        )

    @pytest.mark.parametrize("name", sorted(PARITY_CONFIGS))
    def test_full_width_beam_matches_exhaustive(self, name, tmp_path):
        config = PARITY_CONFIGS[name]
        cache_dir = str(tmp_path / "cache")
        exhaustive = explore(
            name, samples=2, seed=0, cache_dir=cache_dir, **config
        )
        beam = explore(
            name,
            samples=2,
            seed=0,
            cache_dir=cache_dir,
            strategy="beam",
            beam_width=10_000,
            **config,
        )
        assert _signature(beam) == _signature(exhaustive)
        # The beam Pareto frontier is (superset-or-)equal to the exhaustive
        # one — here byte-identical, fingerprints and verdicts included.
        assert {o.candidate.fingerprint for o in beam.frontier} == {
            o.candidate.fingerprint for o in exhaustive.frontier
        }
        assert [o.obligations_digest() for o in beam.frontier] == [
            o.obligations_digest() for o in exhaustive.frontier
        ]
        assert beam.beam_pruned == 0
        # Incremental accounting partitions the pooled total on both paths.
        for report in (exhaustive, beam):
            assert (
                report.incremental["reused"] + report.incremental["delta_obligations"]
                == report.incremental["total_obligations"]
            )
            assert report.incremental["total_obligations"] == sum(
                outcome.obligations for outcome in report.outcomes
            )


class TestIncrementalGate:
    def test_deep_search_reuses_parent_verdicts(self):
        report = explore("lu", depth=2, samples=2, seed=0)
        assert report.incremental["reused"] > 0
        assert report.reuse_rate >= 0.6
        # Per-candidate accounting is consistent with the session totals.
        assert report.incremental["reused"] == sum(
            outcome.reused_obligations for outcome in report.outcomes
        )
        assert report.incremental["delta_obligations"] == sum(
            outcome.delta_obligations for outcome in report.outcomes
        )
        # The baseline generation sees a cold store: everything is delta.
        baseline = report.outcomes[0]
        assert baseline.reused_obligations == 0
        assert baseline.delta_obligations == baseline.obligations
        # Engine statistics mirror the store's counters.
        assert report.engine_stats["incremental_reused"] == report.incremental["reused"]
        assert (
            report.engine_stats["delta_obligations"]
            == report.incremental["delta_obligations"]
        )

    def test_warm_cache_rerun_discharges_zero_solver_calls(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = explore("lu", depth=2, samples=2, seed=0, cache_dir=cache_dir)
        warm = explore("lu", depth=2, samples=2, seed=0, cache_dir=cache_dir)
        assert cold.engine_stats["solver_calls"] > 0
        assert warm.engine_stats["solver_calls"] == 0
        assert _signature(warm) == _signature(cold)

    def test_beam_run_is_deterministic(self):
        one = explore("lu", depth=2, samples=2, seed=0, strategy="beam", beam_width=4)
        two = explore("lu", depth=2, samples=2, seed=0, strategy="beam", beam_width=4)
        assert _signature(one) == _signature(two)
        assert one.reward_table == two.reward_table
        assert one.beam_pruned == two.beam_pruned

    def test_narrow_beam_prunes(self):
        exhaustive = explore("lu", depth=2, samples=2, seed=0)
        narrow = explore("lu", depth=2, samples=2, seed=0, strategy="beam", beam_width=2)
        assert narrow.beam_pruned > 0
        assert narrow.candidates < exhaustive.candidates
        # Every beam candidate is an exhaustive candidate (the beam only
        # prunes, never invents), with identical obligations and verdicts.
        exhaustive_digests = {
            o.candidate.fingerprint: o.obligations_digest()
            for o in exhaustive.outcomes
        }
        for outcome in narrow.outcomes:
            assert (
                exhaustive_digests[outcome.candidate.fingerprint]
                == outcome.obligations_digest()
            )

    def test_search_budget_truncates(self):
        report = explore(
            "lu", depth=3, samples=2, seed=0, search_budget_seconds=1e-6
        )
        assert report.truncated
        # Only the baseline generation ran before the budget bit.
        assert all(outcome.candidate.depth == 0 for outcome in report.outcomes)

    def test_invalid_strategy_rejected(self):
        with pytest.raises(ValueError):
            explore("lu", depth=1, samples=2, strategy="random")


class TestReportSurfacing:
    def test_summary_reports_duplicates_and_inapplicable(self):
        from repro.explore.explorer import ExploreReport

        report = ExploreReport(case_study="lu", depth=2, samples=2, seed=0)
        report.duplicate_candidates = 9
        report.inapplicable_sites = 4
        summary = report.summary()
        assert "9 structurally duplicate candidates" in summary
        assert "4 site applications" in summary and "stale anchors" in summary

    def test_summary_reports_incremental_reuse(self):
        report = explore("lu", depth=2, samples=2, seed=0)
        summary = report.summary()
        assert "incremental gate" in summary
        assert "reuse rate" in summary
        assert "structurally duplicate" in summary  # lu depth 2 folds dupes

    def test_as_dict_carries_search_keys(self):
        report = explore("lu", depth=1, samples=2, seed=0, strategy="beam", beam_width=3)
        payload = report.as_dict()
        assert payload["strategy"] == "beam"
        assert payload["beam_width"] == 3
        assert "beam_pruned" in payload and "truncated" in payload
        assert payload["incremental"]["total_obligations"] > 0
        assert isinstance(payload["reward_table"], dict)
        for row in payload["results"]:
            assert "parent" in row
            assert "reused_obligations" in row and "delta_obligations" in row
            assert "obligations_digest" in row


class TestExploreCliStrategies:
    def test_beam_flags_and_envelope(self, tmp_path, capsys):
        json_path = tmp_path / "explore.json"
        exit_code = main(
            [
                "explore",
                "lu",
                "--depth",
                "2",
                "--samples",
                "2",
                "--strategy",
                "beam",
                "--beam-width",
                "4",
                "--json",
                str(json_path),
            ]
        )
        assert exit_code == 0
        payload = json.loads(json_path.read_text())
        from repro.cli_report import validate_payload

        assert validate_payload(payload) is None
        assert payload["strategy"] == "beam"
        assert payload["beam_width"] == 4
        assert payload["incremental"]["reuse_rate"] >= 0.6
        out = capsys.readouterr().out
        assert "incremental gate" in out

    def test_bad_flags_rejected(self):
        with pytest.raises(SystemExit):
            main(["explore", "lu", "--beam-width", "0"])
        with pytest.raises(SystemExit):
            main(["explore", "lu", "--search-budget", "0"])
        with pytest.raises(SystemExit):
            main(["explore", "lu", "--strategy", "random"])
