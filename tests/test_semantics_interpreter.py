"""Tests for the dynamic original and relaxed big-step interpreters."""

import pytest

from repro.lang import builder as b
from repro.lang.parser import parse_program, parse_statement
from repro.semantics.choosers import FixedChoiceChooser, MinimalChangeChooser, SolverChooser
from repro.semantics.interpreter import (
    Interpreter,
    NonTerminationError,
    eval_bool,
    eval_expr,
    run_original,
    run_relaxed,
)
from repro.semantics.state import State, Terminated, is_bad_assume, is_error, is_wrong


class TestExpressionEvaluation:
    def test_arithmetic(self):
        state = State.of({"x": 3, "y": 4})
        assert eval_expr(b.add(b.mul("x", 2), "y"), state) == 10

    def test_array_read(self):
        state = State.of({"i": 1}, arrays={"A": {0: 5, 1: 9}})
        assert eval_expr(b.aread("A", "i"), state) == 9

    def test_boolean(self):
        state = State.of({"x": 3})
        assert eval_bool(b.and_(b.gt("x", 0), b.not_(b.eq("x", 5))), state) is True


class TestBasicStatements:
    def test_assignment_sequence(self):
        program = parse_statement("x = 1; y = x + 2;")
        outcome = run_original(program, State.of({}))
        assert isinstance(outcome, Terminated)
        assert outcome.state.scalar_map() == {"x": 1, "y": 3}

    def test_array_assignment(self):
        program = parse_statement("A[i] = x * 2;")
        outcome = run_original(program, State.of({"i": 1, "x": 5}, arrays={"A": {}}))
        assert outcome.state.array_element("A", 1) == 10

    def test_assert_failure_is_wrong(self):
        outcome = run_original(parse_statement("assert x > 0;"), State.of({"x": 0}))
        assert is_wrong(outcome)

    def test_assume_failure_is_bad_assume(self):
        outcome = run_original(parse_statement("assume x > 0;"), State.of({"x": 0}))
        assert is_bad_assume(outcome)

    def test_undefined_variable_is_wrong(self):
        outcome = run_original(parse_statement("y = x + 1;"), State.of({}))
        assert is_wrong(outcome)

    def test_division_by_zero_is_wrong(self):
        outcome = run_original(parse_statement("y = x / z;"), State.of({"x": 1, "z": 0}))
        assert is_wrong(outcome)

    def test_if_branches(self):
        program = parse_statement("if (x < 0) { y = 0 - x; } else { y = x; }")
        assert run_original(program, State.of({"x": -4})).state.scalar("y") == 4
        assert run_original(program, State.of({"x": 4})).state.scalar("y") == 4

    def test_while_loop(self):
        program = parse_statement("s = 0; i = 0; while (i < n) { s = s + i; i = i + 1; }")
        outcome = run_original(program, State.of({"n": 5}))
        assert outcome.state.scalar("s") == 10

    def test_nontermination_raises(self):
        program = parse_statement("while (true) { x = x + 1; }")
        with pytest.raises(NonTerminationError):
            run_original(program, State.of({"x": 0}), fuel=50)

    def test_error_propagates_through_seq(self):
        program = parse_statement("assert false; x = 1;")
        outcome = run_original(program, State.of({}))
        assert is_wrong(outcome)

    def test_error_propagates_out_of_loop(self):
        program = parse_statement("i = 0; while (i < 3) { assert i < 2; i = i + 1; }")
        assert is_wrong(run_original(program, State.of({})))


class TestRelaxSemantics:
    SOURCE = """
    y = x;
    relax (x) st (y - 1 <= x && x <= y + 1);
    """

    def test_relax_is_noop_in_original_semantics(self):
        outcome = run_original(parse_statement(self.SOURCE), State.of({"x": 5}))
        assert outcome.state.scalar("x") == 5

    def test_relax_predicate_checked_in_original_semantics(self):
        # If the current values do not satisfy the relaxation predicate, the
        # original execution goes wrong (relax behaves like assert).
        source = "relax (x) st (x == 99);"
        outcome = run_original(parse_statement(source), State.of({"x": 5}))
        assert is_wrong(outcome)

    def test_relax_modifies_state_in_relaxed_semantics(self):
        chooser = FixedChoiceChooser([{"x": 6}])
        outcome = run_relaxed(parse_statement(self.SOURCE), State.of({"x": 5}), chooser=chooser)
        assert outcome.state.scalar("x") == 6

    def test_relaxed_choice_must_satisfy_predicate(self):
        # A scripted choice violating the predicate falls back to a valid one.
        chooser = FixedChoiceChooser([{"x": 50}])
        outcome = run_relaxed(parse_statement(self.SOURCE), State.of({"x": 5}), chooser=chooser)
        assert isinstance(outcome, Terminated)
        assert 4 <= outcome.state.scalar("x") <= 6

    def test_havoc_unsatisfiable_is_wrong_in_both(self):
        source = "havoc (x) st (x < x);"
        assert is_wrong(run_original(parse_statement(source), State.of({"x": 0})))
        assert is_wrong(run_relaxed(parse_statement(source), State.of({"x": 0})))

    def test_havoc_choice_satisfies_predicate(self):
        source = "havoc (x) st (3 <= x && x <= 4);"
        outcome = run_relaxed(parse_statement(source), State.of({"x": 0}), chooser=SolverChooser())
        assert 3 <= outcome.state.scalar("x") <= 4


class TestObservations:
    def test_relate_emits_observation(self):
        program = parse_statement("x = 1; relate l: x<o> == x<r>;")
        outcome = run_original(program, State.of({}))
        assert len(outcome.observations) == 1
        assert outcome.observations[0].label == "l"
        assert outcome.observations[0].state.scalar("x") == 1

    def test_observations_ordered_chronologically(self):
        program = parse_statement(
            "i = 0; while (i < 2) { relate step: i<o> == i<r>; i = i + 1; } relate end: true;"
        )
        outcome = run_original(program, State.of({}))
        assert [obs.label for obs in outcome.observations] == ["step", "step", "end"]

    def test_default_interpreter_choosers(self):
        original = Interpreter(relaxed=False)
        relaxed = Interpreter(relaxed=True)
        assert isinstance(original.chooser, MinimalChangeChooser)
        assert isinstance(relaxed.chooser, SolverChooser)

    def test_interpreter_accepts_program_objects(self):
        program = parse_program("vars x; x = 1; relate l: x<o> == x<r>;")
        outcome = Interpreter().run(program, State.of({}))
        assert isinstance(outcome, Terminated)


class TestCompiledExpressionCache:
    def test_precompile_populates_caches(self):
        from repro.semantics.interpreter import (
            clear_expr_cache,
            expr_cache_stats,
            precompile_program,
        )

        clear_expr_cache()
        program = parse_program(
            "vars x, y; arrays A; x = y + 1; if (x > 0) { A[0] = x * 2; } "
            "while (x < 5) { x = x + 1; } assert x >= 5;"
        )
        visited = precompile_program(program)
        assert visited > 0
        stats = expr_cache_stats()
        assert stats["exprs"] > 0 and stats["bools"] > 0
        # Idempotent: a second pass compiles nothing new.
        precompile_program(program)
        assert expr_cache_stats() == stats

    def test_eval_uses_cached_closures_across_states(self):
        from repro.semantics.interpreter import expr_cache_stats

        expr = parse_statement("y = x * x + 1;").value
        before = expr_cache_stats()["exprs"]
        assert eval_expr(expr, State.of({"x": 3})) == 10
        after_first = expr_cache_stats()["exprs"]
        assert after_first > before
        assert eval_expr(expr, State.of({"x": -2})) == 5
        assert expr_cache_stats()["exprs"] == after_first

    def test_compiled_errors_match_uncompiled_semantics(self):
        stmt = parse_statement("x = 1 / y;")
        outcome = run_original(stmt, State.of({"y": 0}))
        assert is_wrong(outcome)
        outcome = run_original(stmt, State.of({}))
        assert is_wrong(outcome)


class TestStateStorage:
    def test_functional_updates_share_structure_safely(self):
        base = State.of({"x": 1}, arrays={"A": {0: 1, 1: 2}})
        left = base.set_scalar("x", 10)
        right = base.set_scalar("x", 20)
        assert base.scalar("x") == 1
        assert left.scalar("x") == 10 and right.scalar("x") == 20
        # Array stores are shared between derived states, but a write to
        # one must not surface in the others.
        written = left.set_array_element("A", 0, 99)
        assert written.array("A") == {0: 99, 1: 2}
        assert left.array("A") == base.array("A") == {0: 1, 1: 2}

    def test_handed_out_arrays_are_copies(self):
        state = State.of({}, arrays={"A": {0: 1}})
        contents = state.array(name="A")
        contents[0] = 42
        assert state.array("A") == {0: 1}
        mapping = state.array_map()
        mapping["A"][0] = 42
        assert state.array("A") == {0: 1}

    def test_hash_and_equality_ignore_insertion_order(self):
        forward = State.of({"a": 1, "b": 2}, arrays={"A": {0: 1, 1: 2}})
        backward = State.of({"b": 2, "a": 1}, arrays={"A": {1: 2, 0: 1}})
        assert forward == backward
        assert hash(forward) == hash(backward)
        assert len({forward, backward}) == 1

    def test_legacy_tuple_views_are_sorted(self):
        state = State.of({"b": 2, "a": 1}, arrays={"B": {1: 4}, "A": {0: 3}})
        assert state.scalars == (("a", 1), ("b", 2))
        assert state.arrays == (("A", ((0, 3),)), ("B", ((1, 4),)))
        assert state.variables() == ("a", "b")
        assert state.array_names() == ("A", "B")

    def test_state_pickles_by_value(self):
        import pickle

        state = State.of({"x": 7}, arrays={"A": {0: 1}})
        clone = pickle.loads(pickle.dumps(state))
        assert clone == state and hash(clone) == hash(state)
