"""Tests for the analysis utilities and the command-line interface."""

import json

import pytest

from repro.analysis.metrics import (
    EffortRow,
    MetricSeries,
    SweepResult,
    absolute_deviation,
    effort_rows,
    format_effort_table,
    fraction_within,
    relative_deviation,
    sweep,
)
from repro.cli import main
from repro.hoare.verifier import verify_acceptability
from repro.lang import builder as b


class TestAccuracyMetrics:
    def test_absolute_and_relative_deviation(self):
        assert absolute_deviation(10, 7) == 3
        assert relative_deviation(10, 7) == pytest.approx(0.3)
        assert relative_deviation(0, 0) == 0.0
        assert relative_deviation(0, 1) == float("inf")

    def test_fraction_within(self):
        assert fraction_within([0, 1, 2, 3], 1) == 0.5
        assert fraction_within([], 1) == 1.0

    def test_metric_series_statistics(self):
        series = MetricSeries("dev")
        for value in (1.0, 2.0, 3.0, 4.0):
            series.add(value)
        summary = series.summary()
        assert summary["count"] == 4
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["max"] == 4.0
        assert series.percentile(0.0) == 1.0
        assert series.percentile(1.0) == 4.0

    def test_empty_series(self):
        series = MetricSeries("empty")
        assert series.mean == 0.0 and series.maximum == 0.0


class TestSweeps:
    def test_sweep_runs_grid(self):
        result = sweep(
            "square",
            [{"x": float(x)} for x in range(4)],
            lambda parameters: {"y": parameters["x"] ** 2},
        )
        assert result.series("x", "y") == [(0.0, 0.0), (1.0, 1.0), (2.0, 4.0), (3.0, 9.0)]

    def test_format_table(self):
        result = SweepResult("demo")
        result.add({"a": 1.0}, {"b": 2.0})
        text = result.format_table(["a", "b"])
        assert "a" in text and "2" in text


class TestEffortReports:
    def test_effort_rows_from_acceptability_report(self):
        program = b.program("tiny", b.assign("x", 1), b.relate("l", b.same("x")), variables=("x",))
        report = verify_acceptability(program)
        rows = effort_rows("tiny", report, paper_proof_lines=100)
        assert len(rows) == 2
        layers = {row.layer for row in rows}
        assert layers == {"original", "relaxed"}
        relaxed_row = next(row for row in rows if row.layer == "relaxed")
        assert relaxed_row.paper_proof_lines == 100

    def test_format_effort_table(self):
        rows = [
            EffortRow("demo", "original", 3, 1, 1, 10, 0.01),
            EffortRow("demo", "relaxed", 5, 2, 2, 30, 0.02, paper_proof_lines=330),
        ]
        text = format_effort_table(rows)
        assert "demo" in text and "330" in text


class TestCLI:
    def test_parse_command(self, tmp_path, capsys):
        source = tmp_path / "prog.rlx"
        source.write_text("vars x; x = 1; assert x > 0;")
        assert main(["parse", str(source)]) == 0
        assert "assert" in capsys.readouterr().out

    def test_run_command_original(self, tmp_path, capsys):
        source = tmp_path / "prog.rlx"
        source.write_text("y = x + 1;")
        assert main(["run", str(source), "--init", "x=4"]) == 0
        assert "y=5" in capsys.readouterr().out

    def test_run_command_relaxed(self, tmp_path, capsys):
        source = tmp_path / "prog.rlx"
        source.write_text("relax (x) st (0 <= x && x <= 2); y = x;")
        assert main(["run", str(source), "--relaxed", "--init", "x=0"]) == 0
        assert "terminated" in capsys.readouterr().out

    def test_run_command_error_exit_code(self, tmp_path, capsys):
        source = tmp_path / "prog.rlx"
        source.write_text("assert x > 0;")
        assert main(["run", str(source), "--init", "x=0"]) == 1

    def test_verify_case_study_command(self, capsys):
        assert main(["verify-case-study", "water-parallelization"]) == 0
        assert "VERIFIED" in capsys.readouterr().out

    def test_simulate_case_study_command(self, capsys):
        assert main(["simulate-case-study", "lu-approximate-memory", "--runs", "3"]) == 0
        out = capsys.readouterr().out
        assert "relate violations : 0" in out

    def test_unknown_case_study(self):
        with pytest.raises(SystemExit):
            main(["verify-case-study", "does-not-exist"])


class TestVerificationExitCodesAndJson:
    """verify-batch / verify-case-study must exit non-zero whenever any
    obligation fails or is UNKNOWN, and their --json output must carry the
    obligation-cache hit/miss counters."""

    def test_verify_batch_fails_on_invalid_obligation(self, tmp_path, capsys):
        source = tmp_path / "bad.rlx"
        source.write_text("assert x > 0;")  # invalid: no precondition on x
        assert main(["verify-batch", "--dir", str(tmp_path)]) == 1

    def test_verify_batch_fails_on_unknown_obligation(self, tmp_path, capsys):
        # x * x >= 0 is true but non-linear: the solver answers UNKNOWN,
        # and an UNKNOWN must never exit as success.
        source = tmp_path / "nonlinear.rlx"
        source.write_text("assert x * x >= 0;")
        assert main(["verify-batch", "--dir", str(tmp_path)]) == 1

    def test_verify_batch_json_carries_cache_counters(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        cache_dir = tmp_path / "cache"
        assert (
            main(
                [
                    "verify-batch",
                    "lu-approximate-memory",
                    "--cache-dir",
                    str(cache_dir),
                    "--json",
                    str(report_path),
                ]
            )
            == 0
        )
        payload = json.loads(report_path.read_text())
        assert {"hits", "misses", "hit_rate"} <= set(payload["cache"])
        layers = payload["programs"][0]["layers"]
        assert "unknown" in layers["original"] and "unknown" in layers["relaxed"]

    def test_verify_case_study_json_carries_cache_counters(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        cache_dir = tmp_path / "cache"
        assert (
            main(
                [
                    "verify-case-study",
                    "water-parallelization",
                    "--cache-dir",
                    str(cache_dir),
                    "--json",
                    str(report_path),
                ]
            )
            == 0
        )
        payload = json.loads(report_path.read_text())
        assert payload["verified"] is True
        assert {"hits", "misses", "hit_rate"} <= set(payload["cache"])
        assert payload["layers"]["relaxed"]["unknown"] == 0

    def test_verify_case_study_warm_cache_round_trip(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        for path in (first, second):
            assert (
                main(
                    [
                        "verify-case-study",
                        "water-parallelization",
                        "--cache-dir",
                        str(cache_dir),
                        "--json",
                        str(path),
                    ]
                )
                == 0
            )
        warm = json.loads(second.read_text())
        assert warm["cache"]["hits"] > 0
        assert warm["cache"]["misses"] == 0


class TestSimulationSeedThreading:
    def test_chooser_policy_with_seed_is_reproducible(self, capsys):
        runs = []
        for _ in range(2):
            assert (
                main(
                    [
                        "simulate-case-study",
                        "lu-approximate-memory",
                        "--runs",
                        "4",
                        "--seed",
                        "11",
                        "--chooser",
                        "random",
                    ]
                )
                == 0
            )
            runs.append(capsys.readouterr().out)
        assert runs[0] == runs[1]
        assert "chooser=random, seed=11" in runs[0]

    def test_adversarial_chooser_accepts_seed(self, capsys):
        assert (
            main(
                [
                    "simulate-case-study",
                    "swish-dynamic-knobs",
                    "--runs",
                    "3",
                    "--seed",
                    "5",
                    "--chooser",
                    "adversarial",
                ]
            )
            == 0
        )
        assert "chooser=adversarial, seed=5" in capsys.readouterr().out

    def test_unknown_chooser_rejected(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "simulate-case-study",
                    "lu-approximate-memory",
                    "--chooser",
                    "nope",
                ]
            )


class TestExplainCommand:
    """repro explain and the --explain flags (failure forensics)."""

    BROKEN = "vars x;\nx = 0;\nrelax (x) st (x >= 0);\nrelate exact: x<o> == x<r>;\n"

    def test_explain_failing_site_renders_forensics(self, capsys):
        assert main(["explain", "lu", "--site", "knob:N:f1"]) == 0
        out = capsys.readouterr().out
        assert "failure forensics" in out
        assert "knob:N:f1" in out
        assert "counterexample (concrete assignment):" in out
        assert "confirmed mechanically" in out

    def test_explain_json_envelope_validates_and_replays(self, tmp_path, capsys):
        report_path = tmp_path / "explain.json"
        assert (
            main(["explain", "lu", "--site", "knob:N:f1", "--json", str(report_path)])
            == 0
        )
        payload = json.loads(report_path.read_text())
        from repro.cli_report import validate_payload

        assert validate_payload(payload) is None
        assert payload["command"] == "explain"
        assert payload["verified"] is False
        assert payload["diagnostics"][0]["sites"] == ["knob:N:f1"]
        assert payload["diagnostics"][0]["formula_value"] is False
        capsys.readouterr()

        # Replay the recorded envelope: identical forensics, no solver.
        assert main(["explain", "--from-json", str(report_path)]) == 0
        replay = capsys.readouterr().out
        assert "replayed from a recorded report envelope" in replay
        assert "counterexample (concrete assignment):" in replay

    def test_explain_from_json_rejects_envelope_without_diagnostics(self, tmp_path):
        envelope = tmp_path / "plain.json"
        envelope.write_text(json.dumps({"verified": True}))
        with pytest.raises(SystemExit) as excinfo:
            main(["explain", "--from-json", str(envelope)])
        assert "--explain" in str(excinfo.value)

    def test_explain_requires_name_or_envelope(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["explain"])
        assert "case-study name" in str(excinfo.value)

    def test_explain_unknown_site_lists_applicable(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["explain", "lu", "--site", "knob:bogus:f1"])
        assert "applicable sites" in str(excinfo.value)

    def test_verify_batch_explain_attaches_diagnostics(self, tmp_path, capsys):
        source = tmp_path / "broken.rlx"
        source.write_text(self.BROKEN)
        report_path = tmp_path / "report.json"
        assert (
            main(
                [
                    "verify-batch",
                    "--dir",
                    str(tmp_path),
                    "--explain",
                    "--json",
                    str(report_path),
                ]
            )
            == 1
        )
        out = capsys.readouterr().out
        assert "[relate]" in out and "x<o> = 0" in out
        payload = json.loads(report_path.read_text())
        assert payload["diagnostics"]
        entry = payload["diagnostics"][0]
        assert entry["rule"] == "relate"
        assert entry["model"] and entry["formula_value"] is False
        assert entry["location"].startswith("line")

    def test_verify_case_study_explain_on_verified_is_quiet(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        assert (
            main(
                [
                    "verify-case-study",
                    "lu-approximate-memory",
                    "--explain",
                    "--json",
                    str(report_path),
                ]
            )
            == 0
        )
        payload = json.loads(report_path.read_text())
        assert payload["verified"] is True
        assert payload["diagnostics"] == []
