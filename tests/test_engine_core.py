"""Tests for the obligation engine: portfolio, scheduler, caching, parity.

The key invariants:

* the engine's serial default reproduces the seed's discharge loop (same
  verdicts, same solver statistics accounting);
* cache hits replay the original verdict without any solver call, and
  ``UNKNOWN`` never enters the cache (budget exhaustion cannot masquerade
  as a proof);
* parallel and portfolio discharge produce verdicts identical to the serial
  path.
"""

import pytest

from repro.engine.cache import ObligationCache
from repro.engine.core import ObligationEngine
from repro.engine.portfolio import (
    DEFAULT_STRATEGIES,
    Portfolio,
    SolverStrategy,
    run_portfolio,
)
from repro.engine.scheduler import DischargeScheduler, DischargeTask
from repro.hoare.obligations import (
    ObligationCollector,
    ObligationKind,
    ProofSystem,
)
from repro.hoare.unary import prove_original
from repro.lang import builder as b
from repro.logic.formula import conj, eq, exists, ge, gt, implies, le, lt, sym, var
from repro.solver.interface import Solver
from repro.solver.lia import Status


def _collector(*entries):
    collector = ObligationCollector(ProofSystem.ORIGINAL)
    for index, (formula, kind) in enumerate(entries):
        collector.add(formula, kind, rule=f"rule{index}", description=f"obligation {index}")
    return collector


VALID_FORMULA = implies(gt(var("x"), 2), gt(var("x"), 1))
INVALID_FORMULA = implies(gt(var("x"), 1), gt(var("x"), 2))
SAT_FORMULA = conj(ge(var("x"), 0), le(var("x"), 10))
UNSAT_FORMULA = conj(gt(var("x"), 5), lt(var("x"), 3))


class TestPortfolio:
    def test_first_conclusive_strategy_wins(self):
        result, winner, attempts = run_portfolio(
            VALID_FORMULA, "validity", DEFAULT_STRATEGIES
        )
        assert result.status is Status.VALID
        assert winner == DEFAULT_STRATEGIES[0].name
        assert attempts == 1

    def test_sat_kind_conclusiveness(self):
        result, winner, _ = run_portfolio(SAT_FORMULA, "satisfiability", DEFAULT_STRATEGIES)
        assert result.status is Status.SAT
        assert winner

    def test_win_table_reorders_strategies(self):
        portfolio = Portfolio()
        last = portfolio.strategies[-1].name
        for _ in range(5):
            portfolio.record_win("validity", last)
        assert portfolio.order_for("validity")[0].name == last
        # Other kinds keep the declared order.
        assert portfolio.order_for("satisfiability") == portfolio.strategies

    def test_merge_and_persist_wins(self, tmp_path):
        portfolio = Portfolio()
        portfolio.merge_wins({"validity": {"full": 3}})
        portfolio.save(str(tmp_path))
        fresh = Portfolio()
        assert fresh.load(str(tmp_path))
        assert fresh.wins["validity"]["full"] == 3

    def test_duplicate_strategy_names_rejected(self):
        with pytest.raises(ValueError):
            Portfolio([SolverStrategy("a"), SolverStrategy("a")])

    def test_empty_portfolio_rejected(self):
        with pytest.raises(ValueError):
            Portfolio([])


class TestScheduler:
    def _tasks(self):
        return [
            DischargeTask(0, VALID_FORMULA, "validity", DEFAULT_STRATEGIES),
            DischargeTask(1, UNSAT_FORMULA, "satisfiability", DEFAULT_STRATEGIES),
            DischargeTask(2, SAT_FORMULA, "satisfiability", DEFAULT_STRATEGIES),
            DischargeTask(3, INVALID_FORMULA, "validity", DEFAULT_STRATEGIES),
        ]

    def test_serial_run(self):
        outcomes = DischargeScheduler(jobs=1).run(self._tasks())
        assert [outcome.status for outcome in outcomes] == [
            Status.VALID,
            Status.UNSAT,
            Status.SAT,
            Status.INVALID,
        ]

    def test_parallel_matches_serial(self):
        serial = DischargeScheduler(jobs=1).run(self._tasks())
        parallel = DischargeScheduler(jobs=2).run(self._tasks())
        assert [o.status for o in serial] == [o.status for o in parallel]
        assert [o.index for o in parallel] == [0, 1, 2, 3]

    def test_counterexample_models_survive_the_pool(self):
        outcomes = DischargeScheduler(jobs=2).run(
            [
                DischargeTask(0, INVALID_FORMULA, "validity", DEFAULT_STRATEGIES),
                DischargeTask(1, SAT_FORMULA, "satisfiability", DEFAULT_STRATEGIES),
            ]
        )
        assert outcomes[0].model is not None
        assert outcomes[1].model is not None

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            DischargeScheduler(jobs=0)

    def test_outcomes_carry_solver_statistics(self):
        for jobs in (1, 2):
            outcomes = DischargeScheduler(jobs=jobs).run(self._tasks())
            for outcome in outcomes:
                assert outcome.solver_stats is not None
                assert outcome.solver_stats["sat_queries"] >= 1


class TestSolverStatisticsAggregation:
    def test_serial_engine_aggregates_solver_counters(self):
        engine = ObligationEngine()
        collector = _collector((VALID_FORMULA, ObligationKind.VALIDITY))
        engine.discharge_all(collector.obligations)
        stats = engine.solver_statistics.as_dict()
        assert stats["validity_queries"] == 1
        assert stats["total_seconds"] > 0

    def test_serial_delta_excludes_outside_queries(self):
        solver = Solver()
        solver.check_sat(SAT_FORMULA)  # made by the caller, not the engine
        engine = ObligationEngine(solver=solver)
        collector = _collector((VALID_FORMULA, ObligationKind.VALIDITY))
        engine.discharge_all(collector.obligations)
        stats = engine.solver_statistics.as_dict()
        # One validity query implies one inner sat query — not two.
        assert stats["sat_queries"] == 1
        assert stats["validity_queries"] == 1

    def test_portfolio_engine_aggregates_worker_counters(self):
        engine = ObligationEngine(jobs=2, portfolio=Portfolio())
        collector = _collector(
            (VALID_FORMULA, ObligationKind.VALIDITY),
            (SAT_FORMULA, ObligationKind.SATISFIABILITY),
        )
        engine.discharge_all(collector.obligations)
        stats = engine.solver_statistics.as_dict()
        assert stats["sat_queries"] >= 2
        assert engine.stats()["solver"] == stats


class TestEngineSerialParity:
    def test_default_engine_matches_seed_loop(self):
        collector = _collector(
            (VALID_FORMULA, ObligationKind.VALIDITY),
            (SAT_FORMULA, ObligationKind.SATISFIABILITY),
            (INVALID_FORMULA, ObligationKind.VALIDITY),
        )
        solver = Solver()
        report = ObligationEngine(solver=solver).discharge_collected(collector, "demo")
        assert [result.status for result in report.results] == [
            Status.VALID,
            Status.SAT,
            Status.INVALID,
        ]
        assert not report.verified  # the INVALID obligation is undischarged
        # The shared solver's statistics keep accumulating, as in the seed.
        assert solver.statistics.validity_queries == 2
        assert solver.statistics.sat_queries >= 3  # check_valid negates into check_sat

    def test_prove_original_accepts_engine(self):
        program = b.program("inc", b.assign("x", b.add(b.v("x"), 1)), variables=("x",))
        engine = ObligationEngine(cache=ObligationCache(), portfolio=Portfolio())
        report = prove_original(program, ge(var("x"), 0), ge(var("x"), 1), engine=engine)
        assert report.verified
        assert engine.statistics.obligations == 1


class TestEngineCaching:
    def test_cache_hit_skips_solver_and_replays_verdict(self):
        collector = _collector(
            (VALID_FORMULA, ObligationKind.VALIDITY),
            (INVALID_FORMULA, ObligationKind.VALIDITY),
        )
        engine = ObligationEngine(cache=ObligationCache(), portfolio=Portfolio())
        first = engine.discharge_all(collector.obligations)
        calls_after_first = engine.statistics.solver_calls
        second = engine.discharge_all(collector.obligations)
        assert engine.statistics.solver_calls == calls_after_first  # zero new calls
        assert engine.statistics.cache_hits == 2
        assert [r.status for r in first] == [r.status for r in second]
        # The cached counterexample is replayed too.
        assert second[1].counterexample == first[1].counterexample

    def test_alpha_equivalent_obligation_hits(self):
        left = _collector((exists(sym("x"), gt(var("x"), 0)), ObligationKind.SATISFIABILITY))
        right = _collector((exists(sym("y"), gt(var("y"), 0)), ObligationKind.SATISFIABILITY))
        engine = ObligationEngine(cache=ObligationCache(), portfolio=Portfolio())
        engine.discharge_all(left.obligations)
        engine.discharge_all(right.obligations)
        assert engine.statistics.cache_hits == 1

    def test_unknown_is_not_cached(self):
        # A non-linear obligation the procedures cannot settle: x*x == 2.
        unknowable = eq(var("x") * var("x"), 2)
        collector = _collector((unknowable, ObligationKind.SATISFIABILITY))
        engine = ObligationEngine(
            cache=ObligationCache(),
            portfolio=Portfolio([SolverStrategy("no-fallback", enable_bounded_fallback=False)]),
        )
        first = engine.discharge_all(collector.obligations)
        assert first[0].status is Status.UNKNOWN
        calls = engine.statistics.solver_calls
        second = engine.discharge_all(collector.obligations)
        assert second[0].status is Status.UNKNOWN
        # The obligation was re-attempted, not answered from the cache.
        assert engine.statistics.solver_calls > calls
        assert engine.statistics.cache_hits == 0

    def test_validity_and_sat_of_same_formula_do_not_collide(self):
        collector = _collector(
            (SAT_FORMULA, ObligationKind.SATISFIABILITY),
            (SAT_FORMULA, ObligationKind.VALIDITY),
        )
        engine = ObligationEngine(cache=ObligationCache(), portfolio=Portfolio())
        results = engine.discharge_all(collector.obligations)
        assert results[0].status is Status.SAT
        # x in [0, 10] is satisfiable but certainly not valid.
        assert results[1].status is Status.INVALID
        assert engine.statistics.cache_hits == 0

    def test_persistent_cache_across_engines(self, tmp_path):
        collector = _collector((VALID_FORMULA, ObligationKind.VALIDITY))
        first = ObligationEngine.for_batch(cache_dir=str(tmp_path))
        first.discharge_all(collector.obligations)
        first.save()
        second = ObligationEngine.for_batch(cache_dir=str(tmp_path))
        results = second.discharge_all(collector.obligations)
        assert results[0].status is Status.VALID
        assert second.statistics.solver_calls == 0
        assert second.statistics.cache_hits == 1


class TestEngineParallel:
    def test_parallel_verdicts_match_serial(self):
        collector = _collector(
            (VALID_FORMULA, ObligationKind.VALIDITY),
            (SAT_FORMULA, ObligationKind.SATISFIABILITY),
            (UNSAT_FORMULA, ObligationKind.SATISFIABILITY),
            (INVALID_FORMULA, ObligationKind.VALIDITY),
        )
        serial = ObligationEngine(solver=Solver()).discharge_all(collector.obligations)
        parallel = ObligationEngine(jobs=2).discharge_all(collector.obligations)
        assert [r.status for r in serial] == [r.status for r in parallel]

    def test_portfolio_path_dedupes_without_a_cache(self):
        collector = _collector(
            (VALID_FORMULA, ObligationKind.VALIDITY),
            (VALID_FORMULA, ObligationKind.VALIDITY),
            (VALID_FORMULA, ObligationKind.VALIDITY),
        )
        engine = ObligationEngine(cache=None, portfolio=Portfolio())
        results = engine.discharge_all(collector.obligations)
        assert [r.status for r in results] == [Status.VALID] * 3
        assert engine.statistics.solver_calls == 1
        assert engine.statistics.dedup_hits == 2

    def test_plain_serial_path_does_not_dedupe(self):
        # Seed parity: without cache or portfolio every obligation gets its
        # own solver call, duplicates included.
        collector = _collector(
            (VALID_FORMULA, ObligationKind.VALIDITY),
            (VALID_FORMULA, ObligationKind.VALIDITY),
        )
        solver = Solver()
        engine = ObligationEngine(solver=solver)
        engine.discharge_all(collector.obligations)
        assert solver.statistics.validity_queries == 2
        assert engine.statistics.dedup_hits == 0

    def test_portfolio_wins_are_recorded(self):
        collector = _collector((VALID_FORMULA, ObligationKind.VALIDITY))
        engine = ObligationEngine(jobs=1, portfolio=Portfolio())
        engine.discharge_all(collector.obligations)
        assert sum(engine.portfolio.wins.get("validity", {}).values()) == 1

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            ObligationEngine(jobs=0)
