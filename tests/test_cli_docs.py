"""The generated CLI reference and the docs link checker stay healthy.

``docs/cli.md`` is generated from the argparse tree; these tests fail the
tier-1 suite whenever it drifts from the real ``repro --help`` output (the
same check the docs CI job runs), and keep the offline link checker
honest about the committed markdown.
"""

import os
import subprocess
import sys

import pytest

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCRIPTS = os.path.join(ROOT, "scripts")


def _run(script, *args):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, os.path.join(SCRIPTS, script), *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=ROOT,
    )


class TestCliReference:
    def test_committed_reference_is_fresh(self):
        result = _run("gen_cli_docs.py", "--check")
        assert result.returncode == 0, (
            "docs/cli.md is stale; regenerate with "
            "PYTHONPATH=src python scripts/gen_cli_docs.py\n"
            f"{result.stdout}{result.stderr}"
        )

    def test_reference_covers_every_subcommand(self):
        with open(os.path.join(ROOT, "docs", "cli.md"), "r", encoding="utf-8") as fh:
            text = fh.read()
        for command in (
            "repro parse",
            "repro run",
            "repro verify-case-study",
            "repro verify-batch",
            "repro simulate-case-study",
            "repro explore",
            "repro effort",
            "repro casestudy",
            "repro casestudy list",
            "repro casestudy lint",
        ):
            assert f"## `{command}`" in text, f"missing section for {command}"

    def test_check_detects_drift(self, tmp_path):
        stale = tmp_path / "cli.md"
        stale.write_text("# stale\n")
        result = _run("gen_cli_docs.py", "--check", "--output", str(stale))
        assert result.returncode == 1
        assert "stale" in result.stdout


class TestLinkChecker:
    def test_committed_markdown_has_no_broken_links(self):
        result = _run("check_links.py")
        assert result.returncode == 0, result.stdout + result.stderr

    def test_detects_broken_link(self, tmp_path):
        bad = tmp_path / "bad.md"
        bad.write_text("see [missing](does-not-exist.md)\n")
        result = _run("check_links.py", str(bad))
        assert result.returncode == 1
        assert "broken link" in result.stdout

    def test_detects_broken_anchor(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("# Only Heading\n[jump](#nowhere)\n")
        result = _run("check_links.py", str(page))
        assert result.returncode == 1
        assert "broken anchor" in result.stdout
