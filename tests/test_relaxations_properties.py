"""Property-based tests (hypothesis) for the relaxation transformations.

Satellite properties for every transform in ``repro.relaxations.transforms``:

* the transformed program is statically well-formed,
* it pretty-prints to concrete syntax that re-parses to an equal AST
  (modulo the semantically irrelevant association of ``Seq``),
* every inserted ``relax`` statement references only in-scope variables
  (targets and predicate variables are declared by the transformed program).

The program generators live in the shared ``tests/strategies.py`` module
(also consumed by the formula-core and fuzz-synthesizer suites).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from strategies import base_programs, flatten_stmt as _flatten, transform_applications

from repro.lang.analysis import bool_vars, check_program
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program
from repro.relaxations.transforms import RelaxationResult
from repro.relaxations.sites import apply_site, discover_sites


class TestTransformProperties:
    @settings(max_examples=60, deadline=None)
    @given(transform_applications())
    def test_transformed_program_is_well_formed(self, result: RelaxationResult):
        report = check_program(result.program, strict_declarations=True)
        assert report.ok, report.errors

    @settings(max_examples=60, deadline=None)
    @given(transform_applications())
    def test_pretty_print_reparses_to_equal_ast(self, result: RelaxationResult):
        text = pretty_program(result.program)
        reparsed = parse_program(text, name=result.program.name)
        assert _flatten(reparsed.body) == _flatten(result.program.body)
        assert reparsed.variables == result.program.variables
        assert reparsed.arrays == result.program.arrays
        # A second round trip is a fixpoint.
        assert pretty_program(reparsed) == text.replace(
            f"// program: {result.program.name}", f"// program: {reparsed.name}"
        )

    @settings(max_examples=60, deadline=None)
    @given(transform_applications())
    def test_inserted_relax_references_only_in_scope_variables(
        self, result: RelaxationResult
    ):
        declared = set(result.program.variables) | set(result.program.arrays)
        assert result.inserted_relax, "every transform inserts/rewrites a relax"
        for relax in result.inserted_relax:
            assert relax in list(result.program.body.walk())
            assert set(relax.targets) <= declared
            assert bool_vars(relax.predicate) <= declared

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_discovered_sites_apply_cleanly(self, data):
        program, _loop, _read, _compute, _counter = data.draw(base_programs())
        for site in discover_sites(program):
            applied = apply_site(program, site)
            assert check_program(applied.program).ok
            reparsed = parse_program(pretty_program(applied.program))
            assert _flatten(reparsed.body) == _flatten(applied.program.body)
