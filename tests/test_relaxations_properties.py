"""Property-based tests (hypothesis) for the relaxation transformations.

Satellite properties for every transform in ``repro.relaxations.transforms``:

* the transformed program is statically well-formed,
* it pretty-prints to concrete syntax that re-parses to an equal AST
  (modulo the semantically irrelevant association of ``Seq``),
* every inserted ``relax`` statement references only in-scope variables
  (targets and predicate variables are declared by the transformed program).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import builder as b
from repro.lang.analysis import bool_vars, check_program
from repro.lang.ast import Assign, If, Program, Relax, Seq, While
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program
from repro.relaxations.transforms import (
    RelaxationResult,
    approximate_memoization,
    approximate_reads,
    dynamic_knob,
    eliminate_synchronization,
    perforate_loop,
    restrict_relax,
    sample_reduction,
    skip_tasks,
)
from repro.relaxations.sites import apply_site, discover_sites

# ---------------------------------------------------------------------------
# Base-program strategy: a loop over a counter plus optional trailing work,
# the common shape every transform in the module applies to.
# ---------------------------------------------------------------------------

counters = st.sampled_from(["i", "k"])
bounds = st.integers(min_value=1, max_value=9)


@st.composite
def base_programs(draw):
    """A summation-style program plus the handles transforms need."""
    counter = draw(counters)
    extra = draw(st.integers(min_value=0, max_value=3))
    use_branch = draw(st.booleans())
    body = [b.assign("s", b.add("s", counter))]
    if use_branch:
        body.append(
            b.if_(
                b.gt("s", extra),
                b.block(b.assign("t", "s"), b.assign("s", b.sub("s", 1))),
            )
        )
    body.append(b.assign(counter, b.add(counter, 1)))
    loop = While(
        condition=b.lt(counter, "n"),
        body=b.block(*body),
        invariant=b.true,
    )
    read = Assign("v", b.aread("A", counter))
    compute = Assign("r", b.mul("arg", 2))
    program = b.program(
        f"gen-{counter}-{extra}",
        b.assign("s", 0),
        b.assign("t", 0),
        b.assign(counter, 0),
        loop,
        read,
        compute,
        variables=(
            "s", "t", counter, "n", "v", "e", "r", "arg",
            "cached_arg", "cached_r", "tasks", "samples", "population",
        ),
        arrays=("A", "RS"),
    )
    return program, loop, read, compute, counter


@st.composite
def transform_applications(draw):
    """Apply one arbitrary transform with arbitrary small parameters."""
    program, loop, read, compute, counter = draw(base_programs())
    choice = draw(st.integers(min_value=0, max_value=7))
    if choice == 0:
        return perforate_loop(
            program, loop, counter=counter,
            max_stride=draw(st.integers(min_value=2, max_value=6)),
        )
    if choice == 1:
        return dynamic_knob(
            program, knob="n", floor=draw(st.integers(min_value=0, max_value=5))
        )
    if choice == 2:
        return skip_tasks(
            program, remaining_tasks_var="tasks",
            max_skipped=draw(st.integers(min_value=1, max_value=5)),
        )
    if choice == 3:
        return sample_reduction(
            program,
            sample_count_var="samples",
            population_var="population",
            minimum_fraction_percent=draw(st.integers(min_value=1, max_value=100)),
        )
    if choice == 4:
        return approximate_reads(
            program, value_var="v", error_bound_var="e", insert_after=read
        )
    if choice == 5:
        return approximate_memoization(
            program,
            result_var="r",
            argument_var="arg",
            cached_argument_var="cached_arg",
            cached_result_var="cached_r",
            argument_tolerance=draw(st.integers(min_value=0, max_value=4)),
            result_tolerance=draw(st.integers(min_value=0, max_value=4)),
            insert_after=compute,
        )
    if choice == 6:
        return eliminate_synchronization(program, racy_arrays=("RS",))
    # restrict an inserted relax: first insert one, then strengthen it.
    knobbed = dynamic_knob(program, knob="n", floor=2)
    delta = draw(st.integers(min_value=0, max_value=3))
    return restrict_relax(
        knobbed.program,
        knobbed.inserted_relax[0],
        b.and_(
            b.le(b.sub("original_n", delta), "n"),
            b.le("n", b.add("original_n", delta)),
        ),
    )


def _flatten(stmt):
    """Flatten nested sequences: round-trip equality holds modulo the
    (semantically irrelevant) association of ``Seq``."""
    if isinstance(stmt, Seq):
        return _flatten(stmt.first) + _flatten(stmt.second)
    if isinstance(stmt, If):
        return [
            (
                "if",
                stmt.condition,
                tuple(_flatten(stmt.then_branch)),
                tuple(_flatten(stmt.else_branch)),
            )
        ]
    if isinstance(stmt, While):
        return [
            (
                "while",
                stmt.condition,
                stmt.invariant,
                stmt.rel_invariant,
                tuple(_flatten(stmt.body)),
            )
        ]
    return [stmt]


class TestTransformProperties:
    @settings(max_examples=60, deadline=None)
    @given(transform_applications())
    def test_transformed_program_is_well_formed(self, result: RelaxationResult):
        report = check_program(result.program, strict_declarations=True)
        assert report.ok, report.errors

    @settings(max_examples=60, deadline=None)
    @given(transform_applications())
    def test_pretty_print_reparses_to_equal_ast(self, result: RelaxationResult):
        text = pretty_program(result.program)
        reparsed = parse_program(text, name=result.program.name)
        assert _flatten(reparsed.body) == _flatten(result.program.body)
        assert reparsed.variables == result.program.variables
        assert reparsed.arrays == result.program.arrays
        # A second round trip is a fixpoint.
        assert pretty_program(reparsed) == text.replace(
            f"// program: {result.program.name}", f"// program: {reparsed.name}"
        )

    @settings(max_examples=60, deadline=None)
    @given(transform_applications())
    def test_inserted_relax_references_only_in_scope_variables(
        self, result: RelaxationResult
    ):
        declared = set(result.program.variables) | set(result.program.arrays)
        assert result.inserted_relax, "every transform inserts/rewrites a relax"
        for relax in result.inserted_relax:
            assert relax in list(result.program.body.walk())
            assert set(relax.targets) <= declared
            assert bool_vars(relax.predicate) <= declared

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_discovered_sites_apply_cleanly(self, data):
        program, _loop, _read, _compute, _counter = data.draw(base_programs())
        for site in discover_sites(program):
            applied = apply_site(program, site)
            assert check_program(applied.program).ok
            reparsed = parse_program(pretty_program(applied.program))
            assert _flatten(reparsed.body) == _flatten(applied.program.body)
