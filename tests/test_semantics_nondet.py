"""Tests for choosers, execution enumeration and observational compatibility."""

import pytest

from repro.lang import builder as b
from repro.lang.parser import parse_program, parse_statement
from repro.semantics.choosers import (
    AdversarialChooser,
    ChooserError,
    FixedChoiceChooser,
    MinimalChangeChooser,
    RandomChooser,
    SolverChooser,
)
from repro.semantics.enumerate import EnumerationConfig, enumerate_executions
from repro.semantics.observation import (
    check_compatibility,
    check_program_compatibility,
    relational_holds,
)
from repro.semantics.state import Observation, State, Terminated, is_error, is_wrong


def relax_statement(text="relax (x) st (0 <= x && x <= 3);"):
    return parse_statement(text)


class TestChoosers:
    def test_solver_chooser_satisfies_predicate(self):
        stmt = relax_statement()
        state = SolverChooser().choose(stmt, State.of({"x": 9}))
        assert 0 <= state.scalar("x") <= 3

    def test_solver_chooser_returns_none_when_unsatisfiable(self):
        stmt = relax_statement("relax (x) st (x < x);")
        assert SolverChooser().choose(stmt, State.of({"x": 0})) is None

    def test_minimal_change_keeps_current_value(self):
        stmt = relax_statement()
        state = MinimalChangeChooser().choose(stmt, State.of({"x": 2}))
        assert state.scalar("x") == 2

    def test_minimal_change_falls_back_when_violated(self):
        stmt = relax_statement()
        state = MinimalChangeChooser().choose(stmt, State.of({"x": 9}))
        assert 0 <= state.scalar("x") <= 3

    def test_random_chooser_is_reproducible(self):
        stmt = relax_statement()
        first = RandomChooser(seed=7).choose(stmt, State.of({"x": 9}))
        second = RandomChooser(seed=7).choose(stmt, State.of({"x": 9}))
        assert first.scalar("x") == second.scalar("x")

    def test_random_chooser_stays_in_predicate(self):
        stmt = relax_statement("relax (x) st (y - 2 <= x && x <= y + 2);")
        state = RandomChooser(seed=1).choose(stmt, State.of({"x": 20, "y": 20}))
        assert 18 <= state.scalar("x") <= 22

    def test_adversarial_chooser_prefers_extremes(self):
        stmt = relax_statement("relax (x) st (0 - 3 <= x && x <= 3);")
        state = AdversarialChooser(radius=5).choose(stmt, State.of({"x": 0}))
        assert abs(state.scalar("x")) == 3

    def test_fixed_choice_script_then_fallback(self):
        stmt = relax_statement()
        chooser = FixedChoiceChooser([{"x": 1}])
        assert chooser.choose(stmt, State.of({"x": 9})).scalar("x") == 1
        # Script exhausted: falls back to a valid choice.
        assert 0 <= chooser.choose(stmt, State.of({"x": 2})).scalar("x") <= 3

    def test_fixed_choice_strict_raises_when_exhausted(self):
        stmt = relax_statement()
        chooser = FixedChoiceChooser([], strict=True)
        with pytest.raises(ChooserError):
            chooser.choose(stmt, State.of({"x": 1}))

    def test_array_target_constrained_by_predicate_rejected(self):
        stmt = parse_statement("relax (A) st (A[0] == 1);")
        with pytest.raises(ChooserError):
            SolverChooser().choose(stmt, State.of({}, arrays={"A": {0: 0}}))


class TestEnumeration:
    def test_enumerates_all_relax_choices(self):
        program = parse_statement("relax (x) st (0 <= x && x <= 2); y = x * 2;")
        outcomes = enumerate_executions(program, State.of({"x": 0}), relaxed=True)
        values = sorted(o.state.scalar("y") for o in outcomes if isinstance(o, Terminated))
        assert values == [0, 2, 4]

    def test_original_semantics_is_deterministic_without_havoc(self):
        program = parse_statement("relax (x) st (0 <= x && x <= 2); y = x * 2;")
        outcomes = enumerate_executions(program, State.of({"x": 1}), relaxed=False)
        assert len(outcomes) == 1
        assert outcomes[0].state.scalar("y") == 2

    def test_havoc_enumerated_in_both_semantics(self):
        program = parse_statement("havoc (x) st (0 <= x && x <= 1);")
        for relaxed in (False, True):
            outcomes = enumerate_executions(program, State.of({"x": 5}), relaxed=relaxed)
            values = sorted(o.state.scalar("x") for o in outcomes)
            assert values == [0, 1]

    def test_loop_with_nondeterministic_body(self):
        program = parse_statement(
            "i = 0; s = 0; while (i < 2) { havoc (d) st (0 <= d && d <= 1); s = s + d; i = i + 1; }"
        )
        outcomes = enumerate_executions(program, State.of({"d": 0}), relaxed=False)
        sums = sorted(o.state.scalar("s") for o in outcomes)
        assert sums == [0, 1, 1, 2]

    def test_error_outcomes_are_enumerated(self):
        program = parse_statement("havoc (x) st (0 <= x && x <= 1); assert x == 0;")
        outcomes = enumerate_executions(program, State.of({"x": 0}), relaxed=False)
        assert any(is_wrong(o) for o in outcomes)
        assert any(isinstance(o, Terminated) for o in outcomes)

    def test_unsatisfiable_havoc_yields_wrong(self):
        program = parse_statement("havoc (x) st (false);")
        outcomes = enumerate_executions(program, State.of({"x": 0}), relaxed=False)
        assert len(outcomes) == 1 and is_wrong(outcomes[0])

    def test_array_relax_enumeration(self):
        program = parse_statement("relax (A) st (true); x = A[0];")
        config = EnumerationConfig(array_choice_values=(0, 1))
        outcomes = enumerate_executions(
            program, State.of({"x": 0}, arrays={"A": {0: 5}}), relaxed=True, config=config
        )
        values = sorted(o.state.scalar("x") for o in outcomes)
        assert values == [0, 1]

    def test_sibling_array_choices_do_not_alias(self):
        """Two sibling array choices must never observe each other's writes.

        The havoc expansion builds each choice's contents from
        ``state.array(name)`` and updates it in place; if that dict were
        shared with the state's internal storage (or between iterations),
        one sibling's write would leak into the next sibling and into the
        pre-havoc state.  Every enumerated state must be exactly
        base-contents-plus-one-choice, and the initial state unchanged.
        """
        program = parse_statement("havoc (A) st (true);")
        initial = State.of({}, arrays={"A": {0: 7, 1: 7}})
        config = EnumerationConfig(array_choice_values=(-1, 0, 1))
        outcomes = enumerate_executions(program, initial, relaxed=True, config=config)
        assert len(outcomes) == 9  # 3 values ** 2 cells
        observed = {tuple(sorted(o.state.array("A").items())) for o in outcomes}
        expected = {
            ((0, a), (1, b)) for a in (-1, 0, 1) for b in (-1, 0, 1)
        }
        assert observed == expected
        # The pre-havoc state is untouched by any of the sibling choices.
        assert initial.array("A") == {0: 7, 1: 7}

    def test_sibling_scalar_and_array_choices_are_independent(self):
        program = parse_statement("havoc (x, A) st (0 <= x && x <= 1);")
        initial = State.of({"x": 9}, arrays={"A": {0: 5}})
        config = EnumerationConfig(array_choice_values=(0, 1))
        outcomes = enumerate_executions(program, initial, relaxed=True, config=config)
        combos = {(o.state.scalar("x"), o.state.array("A")[0]) for o in outcomes}
        assert combos == {(x, a) for x in (0, 1) for a in (0, 1)}
        assert initial.scalar("x") == 9 and initial.array("A") == {0: 5}


class TestCompatibility:
    def test_compatible_observations(self):
        program = parse_program("vars x; x = x + 0; relate l: x<o> <= x<r>;")
        psi_o = (Observation("l", State.of({"x": 1})),)
        psi_r = (Observation("l", State.of({"x": 2})),)
        assert check_program_compatibility(program, psi_o, psi_r)

    def test_violated_condition(self):
        program = parse_program("vars x; relate l: x<o> == x<r>;")
        psi_o = (Observation("l", State.of({"x": 1})),)
        psi_r = (Observation("l", State.of({"x": 2})),)
        result = check_program_compatibility(program, psi_o, psi_r)
        assert not result and "violated" in result.reason

    def test_length_mismatch(self):
        program = parse_program("vars x; relate l: x<o> == x<r>;")
        result = check_program_compatibility(program, (), (Observation("l", State.of({})),))
        assert not result and result.failing_index is None

    def test_label_mismatch(self):
        gamma = {"a": b.same("x"), "b": b.same("x")}
        result = check_compatibility(
            gamma,
            (Observation("a", State.of({"x": 1})),),
            (Observation("b", State.of({"x": 1})),),
        )
        assert not result and result.failing_index == 0

    def test_unknown_label(self):
        result = check_compatibility(
            {},
            (Observation("ghost", State.of({})),),
            (Observation("ghost", State.of({})),),
        )
        assert not result

    def test_relational_holds_with_arrays(self):
        condition = b.req(b.oread("A", b.o("i")), b.rread("A", b.r("i")))
        original = State.of({"i": 0}, arrays={"A": {0: 7}})
        relaxed = State.of({"i": 0}, arrays={"A": {0: 7}})
        assert relational_holds(condition, original, relaxed)
