"""Tests for the syntactic analyses (free/modified variables, no_rel, Γ)."""

import pytest

from repro.lang import builder as b
from repro.lang.analysis import (
    WellFormednessError,
    bool_vars,
    check_program,
    count_statement_kinds,
    expr_vars,
    gamma,
    modified_vars,
    no_rel,
    program_size,
    read_vars,
    rel_bool_vars,
    relate_statements,
    statement_size,
    used_vars,
)
from repro.lang.parser import parse_program, parse_rel_bool, parse_statement


class TestExpressionVariables:
    def test_expr_vars(self):
        assert expr_vars(b.add(b.mul("x", 2), "y")) == {"x", "y"}

    def test_array_read_includes_array_name(self):
        assert expr_vars(b.aread("A", b.add("i", 1))) == {"A", "i"}

    def test_bool_vars(self):
        assert bool_vars(b.and_(b.lt("x", "y"), b.not_(b.eq("z", 0)))) == {"x", "y", "z"}

    def test_rel_bool_vars_are_tagged(self):
        condition = parse_rel_bool("x<o> < y<r>")
        assert rel_bool_vars(condition) == {("x", "o"), ("y", "r")}


class TestStatementAnalyses:
    def test_modified_vars_assignment(self):
        assert modified_vars(b.assign("x", b.add("y", 1))) == {"x"}

    def test_modified_vars_havoc_relax(self):
        stmt = b.block(b.havoc(["a", "b"], b.true), b.relax("c", b.true))
        assert modified_vars(stmt) == {"a", "b", "c"}

    def test_modified_vars_array_assign(self):
        assert modified_vars(b.astore("A", "i", 0)) == {"A"}

    def test_modified_vars_control_flow(self):
        stmt = b.if_(b.gt("x", 0), b.assign("y", 1), b.while_(b.true, b.assign("z", 2)))
        assert modified_vars(stmt) == {"y", "z"}

    def test_read_vars(self):
        stmt = parse_statement("if (x < y) { z = A[i]; } else { skip; }")
        assert read_vars(stmt) == {"x", "y", "A", "i"}

    def test_read_vars_relate_uses_untagged_names(self):
        stmt = b.relate("l", b.same("num"))
        assert read_vars(stmt) == {"num"}

    def test_used_vars_union(self):
        stmt = b.assign("x", "y")
        assert used_vars(stmt) == {"x", "y"}

    def test_no_rel(self):
        assert no_rel(b.assign("x", 1))
        assert not no_rel(b.block(b.assign("x", 1), b.relate("l", b.same("x"))))

    def test_relate_statements_in_order(self):
        stmt = b.block(b.relate("a", b.same("x")), b.skip, b.relate("b", b.same("y")))
        assert [node.label for node in relate_statements(stmt)] == ["a", "b"]

    def test_statement_and_program_size(self):
        program = b.program("p", b.assign("x", b.add("x", 1)))
        assert statement_size(program.body) == program_size(program) > 1

    def test_count_statement_kinds(self):
        program = b.program("p", b.assign("x", 1), b.assign("y", 2), b.assert_(b.true))
        counts = count_statement_kinds(program)
        assert counts["Assign"] == 2
        assert counts["Assert"] == 1


class TestGammaAndWellFormedness:
    def test_gamma_maps_labels_to_conditions(self):
        program = b.program(
            "p", b.relate("one", b.same("x")), b.relate("two", b.same("y"))
        )
        mapping = gamma(program)
        assert set(mapping) == {"one", "two"}

    def test_gamma_rejects_duplicate_labels(self):
        program = b.program("p", b.relate("dup", b.same("x")), b.relate("dup", b.same("y")))
        with pytest.raises(WellFormednessError):
            gamma(program)

    def test_check_program_duplicate_labels(self):
        program = b.program("p", b.relate("dup", b.same("x")), b.relate("dup", b.same("y")))
        report = check_program(program)
        assert not report.ok
        with pytest.raises(WellFormednessError):
            report.raise_if_failed()

    def test_check_program_duplicate_havoc_targets(self):
        program = b.program("p", b.havoc(["x", "x"], b.true))
        report = check_program(program)
        assert not report.ok

    def test_check_program_strict_declarations(self):
        program = b.program("p", b.assign("x", "y"), variables=("x",))
        report = check_program(program, strict_declarations=True)
        assert not report.ok
        assert any("y" in error for error in report.errors)

    def test_check_program_ok(self):
        program = b.program(
            "p", b.assign("x", "y"), b.relate("l", b.same("x")), variables=("x", "y")
        )
        report = check_program(program, strict_declarations=True)
        assert report.ok
        report.raise_if_failed()
