"""End-to-end tests for the CLI's observability surface.

``--trace FILE`` on ``verify-batch`` / ``verify-case-study`` / ``explore``
must leave behind a loadable Chrome trace (or JSONL log) whose events form
one tree, inject a ``telemetry`` section into ``--json`` envelopes, and
round-trip through ``repro trace summarize``.  Runs without ``--trace``
must emit envelopes *without* the section — the schema treats it as
strictly optional.
"""

import json

import pytest

from repro import telemetry
from repro.cli import main
from repro.cli_report import validate_payload
from repro.telemetry import summarize_trace


@pytest.fixture(autouse=True)
def _no_ambient_session():
    telemetry.uninstall()
    yield
    telemetry.uninstall()


class TestVerifyBatchTrace:
    def test_cold_trace_is_one_tree_and_matches_envelope(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        report_path = tmp_path / "report.json"
        exit_code = main(
            [
                "verify-batch",
                "sum-reduction-perforation",
                "bnb-early-exit",
                "--jobs", "2",
                "--cache-dir", str(tmp_path / "cache"),
                "--trace", str(trace_path),
                "--json", str(report_path),
            ]
        )
        capsys.readouterr()
        assert exit_code == 0

        trace = json.loads(trace_path.read_text())
        events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert events
        # acceptance criterion: every event nests under the root batch span
        by_id = {e["args"]["span_id"]: e for e in events}
        roots = [e for e in events if e["args"]["parent_span_id"] is None]
        assert [e["name"] for e in roots] == ["batch"]
        for event in events:
            parent = event["args"]["parent_span_id"]
            if parent is not None:
                assert parent in by_id
        # worker spans were re-parented: discharge spans from other pids
        # hang under the dispatch span
        root_pid = roots[0]["pid"]
        worker_events = [e for e in events if e["pid"] != root_pid]
        assert worker_events, "--jobs 2 must record worker-process spans"
        for event in worker_events:
            ancestor = event
            while ancestor["args"]["parent_span_id"] is not None:
                ancestor = by_id[ancestor["args"]["parent_span_id"]]
            assert ancestor["name"] == "batch"

        # the envelope telemetry section agrees with the trace file
        payload = json.loads(report_path.read_text())
        assert validate_payload(payload) is None
        section = payload["telemetry"]
        assert section["enabled"] is True
        summary = summarize_trace(str(trace_path))
        assert len(summary.events) == section["span_count"]
        assert summary.counters == section["counters"]

    def test_no_trace_means_no_telemetry_section(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        exit_code = main(
            ["verify-batch", "sum-reduction-perforation", "--json", str(report_path)]
        )
        capsys.readouterr()
        assert exit_code == 0
        payload = json.loads(report_path.read_text())
        assert validate_payload(payload) is None
        assert "telemetry" not in payload
        assert telemetry.active_session() is None

    def test_trace_session_is_uninstalled_after_the_command(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        main(["verify-batch", "sum-reduction-perforation", "--trace", str(trace_path)])
        capsys.readouterr()
        assert telemetry.active_session() is None
        assert trace_path.exists()


class TestVerifyCaseStudyTrace:
    def test_trace_has_command_root_span(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        report_path = tmp_path / "report.json"
        exit_code = main(
            [
                "verify-case-study", "lu",
                "--trace", str(trace_path),
                "--json", str(report_path),
            ]
        )
        capsys.readouterr()
        assert exit_code == 0
        summary = summarize_trace(str(trace_path))
        names = {event.name for event in summary.events}
        assert "verify-case-study" in names
        payload = json.loads(report_path.read_text())
        assert validate_payload(payload) is None
        assert payload["telemetry"]["spans"]["verify-case-study"]["count"] == 1


class TestExploreTrace:
    def test_jsonl_trace_and_envelope(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        report_path = tmp_path / "report.json"
        exit_code = main(
            [
                "explore", "sum",
                "--depth", "1",
                "--samples", "3",
                "--trace", str(trace_path),
                "--json", str(report_path),
            ]
        )
        capsys.readouterr()
        assert exit_code == 0
        # a .jsonl suffix writes the line-per-event log
        first = json.loads(trace_path.read_text().splitlines()[0])
        assert first["type"] == "span"
        summary = summarize_trace(str(trace_path))
        names = {event.name for event in summary.events}
        assert {"explore", "explore.enumerate", "explore.verify",
                "explore.score", "batch"} <= names
        payload = json.loads(report_path.read_text())
        assert validate_payload(payload) is None
        assert payload["telemetry"]["counters"]["explore.samples"] > 0


class TestTraceSummarizeCommand:
    def _record_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        main(
            [
                "verify-batch", "sum-reduction-perforation",
                "--cache-dir", str(tmp_path / "cache"),
                "--trace", str(trace_path),
            ]
        )
        capsys.readouterr()
        return trace_path

    def test_renders_tables(self, tmp_path, capsys):
        trace_path = self._record_trace(tmp_path, capsys)
        exit_code = main(["trace", "summarize", str(trace_path), "--top", "3"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "stage" in out
        assert "slowest 3 spans:" in out
        assert "batch" in out

    def test_json_output(self, tmp_path, capsys):
        trace_path = self._record_trace(tmp_path, capsys)
        exit_code = main(["trace", "summarize", str(trace_path), "--json", "-"])
        out = capsys.readouterr().out
        assert exit_code == 0
        payload = json.loads(out)
        assert payload["events"] > 0
        assert any(stage["name"] == "batch" for stage in payload["stages"])

    def test_rejects_non_trace_files(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"not": "a trace"}))
        with pytest.raises(SystemExit, match="not a recognised trace file"):
            main(["trace", "summarize", str(bogus)])
        with pytest.raises(SystemExit, match="cannot read trace file"):
            main(["trace", "summarize", str(tmp_path / "missing.json")])
