"""Tests for the relational proof system ⊢r (Figure 8)."""

import pytest

from repro.lang import builder as b
from repro.lang.ast import While
from repro.hoare.relational import (
    DivergenceSpec,
    RelationalConfig,
    RelationalProver,
    prove_relaxed,
)
from repro.hoare.obligations import ObligationKind
from repro.logic.formula import TRUE


class TestLockstepRules:
    def test_skip_and_assign(self):
        program = b.block(b.assign("y", b.add("x", 1)), b.skip)
        report = prove_relaxed(program, b.same("x"), b.same("y"))
        assert report.verified

    def test_relate_requires_relation(self):
        program = b.relate("l", b.same("x"))
        assert prove_relaxed(program, b.same("x"), TRUE).verified
        assert not prove_relaxed(program, b.rle(b.o("x"), b.r("x")), TRUE).verified

    def test_relax_constrains_only_relaxed_side(self):
        program = b.block(
            b.relax("x", b.and_(b.ge("x", 0), b.le("x", 2))),
            b.relate("l", b.rand(b.rge(b.r("x"), 0), b.rle(b.r("x"), 2), b.req(b.o("x"), 1))),
        )
        report = prove_relaxed(program, b.rand(b.same("x"), b.req(b.o("x"), 1)), TRUE)
        assert report.verified

    def test_relax_emits_satisfiability_obligation(self):
        program = b.relax("x", b.ge("x", 0))
        report = prove_relaxed(program, b.same("x"), TRUE)
        kinds = {result.obligation.kind for result in report.results}
        assert ObligationKind.SATISFIABILITY in kinds
        assert report.verified

    def test_unsatisfiable_relax_fails(self):
        program = b.relax("x", b.false)
        report = prove_relaxed(program, b.same("x"), TRUE)
        assert not report.verified

    def test_assert_transferred_by_noninterference(self):
        program = b.block(b.assert_(b.ge("x", 0)), b.relate("l", b.same("x")))
        assert prove_relaxed(program, b.same("x"), TRUE).verified

    def test_assert_not_transferred_without_relation(self):
        program = b.assert_(b.ge("x", 0))
        report = prove_relaxed(program, b.rbl(True), TRUE)
        assert not report.verified

    def test_assume_transfer_mirrors_assert(self):
        program = b.assume(b.lt("k", "n"))
        assert prove_relaxed(program, b.all_same("k", "n"), TRUE).verified
        assert not prove_relaxed(program, b.same("k"), TRUE).verified

    def test_havoc_lockstep_breaks_equality(self):
        program = b.block(b.havoc("x", b.and_(b.ge("x", 0), b.le("x", 1))))
        # After an independent havoc on both sides, x<o> == x<r> is NOT provable.
        report = prove_relaxed(program, b.same("x"), b.same("x"))
        assert not report.verified
        # ... but the havoc predicate holds on both sides.
        report_ok = prove_relaxed(
            program, b.same("x"), b.rand(b.rge(b.r("x"), 0), b.rge(b.o("x"), 0))
        )
        assert report_ok.verified


class TestControlFlow:
    def test_convergent_if(self):
        program = b.if_(b.ge("x", 0), b.assign("y", "x"), b.assign("y", b.sub(0, "x")))
        report = prove_relaxed(program, b.same("x"), b.same("y"))
        assert report.verified
        assert "if-convergent" in report.rule_applications

    def test_divergent_if_uses_diverge_rule(self):
        # The branch depends on a relaxed variable, so control flow diverges;
        # the postcondition about the unmodified variable still holds (frame).
        program = b.block(
            b.relax("x", b.and_(b.ge("x", 0), b.le("x", 1))),
            b.if_(b.gt("x", 0), b.assign("y", 1), b.assign("y", 2)),
        )
        report = prove_relaxed(program, b.all_same("x", "z"), b.same("z"))
        assert report.verified
        assert "diverge" in report.rule_applications

    def test_divergent_if_loses_modified_relation_without_spec(self):
        program = b.block(
            b.relax("x", b.and_(b.ge("x", 0), b.le("x", 1))),
            b.if_(b.gt("x", 0), b.assign("y", 1), b.assign("y", 2)),
        )
        report = prove_relaxed(program, b.all_same("x", "y"), b.same("y"))
        assert not report.verified

    def test_divergence_spec_restores_postcondition(self):
        branch = b.if_(b.gt("x", 0), b.assign("y", 1), b.assign("y", 1))
        program = b.block(b.relax("x", b.and_(b.ge("x", 0), b.le("x", 1))), branch)
        config = RelationalConfig(
            divergence_specs={branch: DivergenceSpec(b.eq("y", 1), b.eq("y", 1))}
        )
        report = prove_relaxed(program, b.all_same("x", "y"), b.same("y"), config=config)
        assert report.verified

    def test_diverge_rule_rejects_relate_inside(self):
        program = b.block(
            b.relax("x", b.and_(b.ge("x", 0), b.le("x", 1))),
            b.if_(b.gt("x", 0), b.relate("inside", b.same("y")), b.skip),
        )
        report = prove_relaxed(program, b.all_same("x", "y"), TRUE)
        assert not report.verified
        assert any("no_rel" in error for error in report.errors)

    def test_convergent_while_with_relational_invariant(self):
        loop = While(
            condition=b.lt("i", "n"),
            body=b.assign("i", b.add("i", 1)),
            invariant=b.le("i", "n"),
            rel_invariant=b.all_same("i", "n"),
        )
        report = prove_relaxed(loop, b.all_same("i", "n"), b.same("i"))
        assert report.verified
        assert "while-convergent" in report.rule_applications

    def test_while_without_rel_invariant_diverges(self):
        loop = While(
            condition=b.lt("i", "n"),
            body=b.assign("i", b.add("i", 1)),
            invariant=b.true,
        )
        report = prove_relaxed(loop, b.all_same("i", "n"), TRUE)
        assert report.verified
        assert "diverge" in report.rule_applications

    def test_force_divergent_override(self):
        branch = b.if_(b.ge("x", 0), b.assign("y", 1), b.assign("y", 2))
        config = RelationalConfig(force_divergent=(branch,))
        report = prove_relaxed(branch, b.all_same("x", "y"), b.same("y"), config=config)
        assert "diverge" in report.rule_applications
        assert not report.verified

    def test_bad_relational_invariant_rejected(self):
        # The invariant converges (i and n stay equal) but its d<o> == 0 part is
        # destroyed by the body, so invariant preservation must fail.
        loop = While(
            condition=b.lt("i", "n"),
            body=b.block(b.assign("i", b.add("i", 1)), b.assign("d", b.add("d", 1))),
            invariant=b.true,
            rel_invariant=b.rand(b.all_same("i", "n"), b.req(b.o("d"), 0)),
        )
        precondition = b.rand(b.all_same("i", "n", "d"), b.req(b.o("d"), 0))
        report = prove_relaxed(loop, precondition, TRUE)
        assert not report.verified
        failing = {result.obligation.rule for result in report.undischarged()}
        assert "while-preserve" in failing


class TestSharedArrays:
    def test_shared_array_read_gives_noninterference(self):
        program = b.block(b.assign("v", b.aread("A", "i")), b.relate("l", b.same("v")))
        config = RelationalConfig(shared_arrays=("A",))
        report = prove_relaxed(program, b.same("i"), TRUE, config=config)
        assert report.verified

    def test_unshared_array_read_does_not(self):
        program = b.block(b.assign("v", b.aread("A", "i")), b.relate("l", b.same("v")))
        report = prove_relaxed(program, b.same("i"), TRUE)
        assert not report.verified

    def test_array_relax_forgets_relational_facts(self):
        program = b.block(
            b.relax("RS", b.true),
            b.relate("l", b.req(b.oread("RS", 0), b.rread("RS", 0))),
        )
        config = RelationalConfig(arrays=("RS",))
        report = prove_relaxed(
            program, b.req(b.oread("RS", 0), b.rread("RS", 0)), TRUE, config=config
        )
        assert not report.verified
