"""Tests for the simulated substrates (search, parallel races, approximate memory)."""

import pytest

from repro.substrates.approxmem import ApproximateMemory, ApproxMemoryChooser, ErrorModel
from repro.substrates.parallel import (
    RacyArrayChooser,
    RacyReductionSimulator,
    Update,
    generate_reduction_workload,
)
from repro.substrates.search import (
    DynamicKnobChooser,
    DynamicKnobController,
    LoadModel,
    generate_query_results,
    result_quality,
)
from repro.substrates.workloads import (
    generate_lu_workloads,
    generate_matrix,
    generate_swish_workloads,
    generate_water_workloads,
)
from repro.lang.parser import parse_statement
from repro.semantics.state import State


class TestApproximateMemory:
    def test_exact_when_error_model_is_trivial(self):
        memory = ApproximateMemory()
        memory.load([1, 2, 3])
        assert [memory.read(address) for address in range(3)] == [1, 2, 3]
        assert memory.max_observed_error() == 0

    def test_bounded_additive_error(self):
        memory = ApproximateMemory(error_model=ErrorModel(max_magnitude=3), seed=1)
        memory.load([100] * 50)
        observed = [memory.read(address) for address in range(50)]
        assert all(97 <= value <= 103 for value in observed)
        assert memory.max_observed_error() <= 3

    def test_bit_flips_touch_low_order_bits_only(self):
        memory = ApproximateMemory(
            error_model=ErrorModel(bit_flip_probability=1.0, flippable_bits=2), seed=0
        )
        memory.write(0, 0)
        assert 0 <= memory.read(0) <= 3

    def test_read_log_records_errors(self):
        memory = ApproximateMemory(error_model=ErrorModel(max_magnitude=1), seed=2)
        memory.write(0, 5)
        memory.read(0)
        entry = memory.read_log[0]
        assert entry["exact"] == 5
        assert abs(entry["error"]) <= 1

    def test_chooser_respects_error_bound_variable(self):
        chooser = ApproxMemoryChooser(ErrorModel(max_magnitude=10), error_bound_var="e", seed=0)
        stmt = parse_statement("relax (a) st (orig - e <= a && a <= orig + e);")
        state = State.of({"a": 50, "orig": 50, "e": 2})
        for _ in range(10):
            chosen = chooser.choose(stmt, state)
            assert 48 <= chosen.scalar("a") <= 52


class TestRacyReduction:
    def test_atomic_reference_result(self):
        simulator = RacyReductionSimulator(threads=2, seed=0)
        initial, updates = generate_reduction_workload(cells=4, updates_per_cell=3, seed=1)
        exact = simulator.exact(initial, updates)
        assert len(exact) == 4

    def test_racy_result_never_exceeds_exact_contributions(self):
        simulator = RacyReductionSimulator(threads=4, seed=3)
        initial, updates = generate_reduction_workload(cells=3, updates_per_cell=5, seed=2)
        exact = simulator.exact(initial, updates)
        racy = simulator.run(initial, updates)
        # Lost updates can only lose positive contributions, never add new ones.
        assert all(racy[i] <= exact[i] for i in range(3))

    def test_races_actually_lose_updates_sometimes(self):
        lost_totals = 0
        for seed in range(8):
            simulator = RacyReductionSimulator(threads=4, seed=seed)
            initial, updates = generate_reduction_workload(cells=2, updates_per_cell=8, seed=seed)
            simulator.run(initial, updates)
            lost_totals += simulator.lost_updates
        assert lost_totals > 0

    def test_single_thread_is_exact(self):
        simulator = RacyReductionSimulator(threads=1, seed=0)
        initial, updates = generate_reduction_workload(cells=3, updates_per_cell=4, seed=5)
        assert simulator.run(initial, updates) == simulator.exact(initial, updates)

    def test_racy_array_chooser_updates_array(self):
        chooser = RacyArrayChooser(array_name="RS", threads=4, seed=1)
        stmt = parse_statement("relax (RS) st (true);")
        state = State.of({}, arrays={"RS": {0: 5, 1: 3}})
        chosen = chooser.choose(stmt, state)
        values = chosen.array("RS")
        assert set(values) == {0, 1}
        assert all(values[i] <= {0: 5, 1: 3}[i] for i in values)


class TestSearchSubstrate:
    def test_query_results_are_sorted_by_score(self):
        results = generate_query_results(20, seed=1)
        scores = [result.score for result in results]
        assert scores == sorted(scores, reverse=True)

    def test_result_quality_monotone_in_presented(self):
        results = generate_query_results(30, seed=2)
        qualities = [result_quality(results, presented) for presented in (5, 10, 30)]
        assert qualities[0] <= qualities[1] <= qualities[2]
        assert qualities[2] == pytest.approx(1.0)

    def test_top10_preserves_most_quality(self):
        results = generate_query_results(50, seed=3)
        assert result_quality(results, 10) > 0.5

    def test_controller_keeps_small_requests(self):
        controller = DynamicKnobController(minimum_results=10)
        assert controller.knob(7, load=100.0) == 7

    def test_controller_clamps_under_load_but_not_below_floor(self):
        controller = DynamicKnobController(minimum_results=10, high_load_threshold=2.0)
        assert controller.knob(50, load=0.0) == 50
        assert controller.knob(50, load=10.0) >= 10

    def test_load_model_is_seeded(self):
        first = [LoadModel(seed=4).step() for _ in range(5)]
        second = [LoadModel(seed=4).step() for _ in range(5)]
        assert first == second

    def test_knob_chooser_respects_paper_constraint(self):
        chooser = DynamicKnobChooser(seed=0)
        stmt = parse_statement(
            "relax (max_r) st ((original_max_r <= 10 && max_r == original_max_r) "
            "|| (10 < original_max_r && 10 <= max_r));"
        )
        for requested in (5, 15, 40):
            state = State.of({"max_r": requested, "original_max_r": requested})
            chosen = chooser.choose(stmt, state)
            if requested <= 10:
                assert chosen.scalar("max_r") == requested
            else:
                assert chosen.scalar("max_r") >= 10


class TestWorkloadGenerators:
    def test_swish_workloads_cover_regimes(self):
        workloads = generate_swish_workloads(30, seed=0)
        assert any(w.num_results < 10 for w in workloads)
        assert any(w.num_results >= 26 for w in workloads)

    def test_water_workloads_length_consistency(self):
        for workload in generate_water_workloads(10, molecules=6, seed=1):
            assert len(workload.interactions) == 6
            assert workload.array_length >= 6

    def test_lu_workloads_error_bounds_cycle(self):
        bounds = {w.error_bound for w in generate_lu_workloads(10, seed=2)}
        assert bounds == {0, 1, 2, 4, 8}

    def test_matrix_generator_shape(self):
        matrix = generate_matrix(5, seed=3)
        assert len(matrix) == 5 and all(len(row) == 5 for row in matrix)

    def test_generators_are_deterministic(self):
        assert generate_swish_workloads(5, seed=9) == generate_swish_workloads(5, seed=9)
        assert generate_lu_workloads(5, seed=9) == generate_lu_workloads(5, seed=9)
