"""Tests for canonical obligation fingerprinting.

The cache key must identify obligations up to presentation — alpha-renaming
of bound variables, conjunct/disjunct order, symmetric-atom orientation —
while never conflating semantically different queries or query kinds.
"""

import pytest

from repro.engine.fingerprint import canonical_form, fingerprint
from repro.logic.formula import (
    Add,
    Const,
    Divides,
    Iff,
    Ite,
    Select,
    Store,
    conj,
    disj,
    eq,
    exists,
    forall,
    ge,
    gt,
    iff,
    implies,
    le,
    lt,
    ne,
    neg,
    sym,
    sym_o,
    sym_r,
    var,
)


def fp(formula, kind="validity"):
    return fingerprint(formula, kind)


class TestAlphaEquivalence:
    def test_renamed_bound_variable_hashes_identically(self):
        left = exists(sym("x"), gt(var("x"), 0))
        right = exists(sym("fresh_99"), gt(var("fresh_99"), 0))
        assert fp(left) == fp(right)

    def test_renamed_forall_hashes_identically(self):
        left = forall(sym("k"), implies(ge(var("k"), 0), ge(var("k") + 1, 1)))
        right = forall(sym("m"), implies(ge(var("m"), 0), ge(var("m") + 1, 1)))
        assert fp(left) == fp(right)

    def test_nested_quantifiers_with_swapped_names(self):
        left = exists(sym("a"), forall(sym("b"), lt(var("a"), var("b"))))
        right = exists(sym("b"), forall(sym("a"), lt(var("b"), var("a"))))
        assert fp(left) == fp(right)

    def test_shadowing_is_respected(self):
        # exists x. (x > 0 && exists x. x < 0) versus two distinct binders.
        inner = exists(sym("x"), lt(var("x"), 0))
        left = exists(sym("x"), conj(gt(var("x"), 0), inner))
        right = exists(sym("y"), conj(gt(var("y"), 0), exists(sym("z"), lt(var("z"), 0))))
        assert fp(left) == fp(right)

    def test_free_symbols_are_not_renamed(self):
        assert fp(gt(var("x"), 0)) != fp(gt(var("y"), 0))

    def test_tagged_symbols_are_distinct(self):
        left = eq(Select(sym_o("A"), var("i")), Const(0))
        right = eq(Select(sym_r("A"), var("i")), Const(0))
        assert fp(left) != fp(right)


class TestReorderingAndOrientation:
    def test_conjunct_order_is_canonical(self):
        a, b, c = gt(var("x"), 0), lt(var("y"), 5), eq(var("z"), 1)
        assert fp(conj(a, b, c)) == fp(conj(c, a, b))

    def test_disjunct_order_is_canonical(self):
        a, b = gt(var("x"), 0), lt(var("y"), 5)
        assert fp(disj(a, b)) == fp(disj(b, a))

    def test_duplicate_conjuncts_collapse(self):
        a = gt(var("x"), 0)
        assert fp(conj(a, a)) == fp(a)

    def test_gt_is_flipped_lt(self):
        assert canonical_form(gt(var("x"), var("y"))) == canonical_form(
            lt(var("y"), var("x"))
        )

    def test_ge_is_flipped_le(self):
        assert canonical_form(ge(var("x"), var("y"))) == canonical_form(
            le(var("y"), var("x"))
        )

    def test_equality_is_symmetric(self):
        assert fp(eq(var("x"), var("y"))) == fp(eq(var("y"), var("x")))
        assert fp(ne(var("x"), var("y"))) == fp(ne(var("y"), var("x")))

    def test_iff_is_symmetric(self):
        a, b = gt(var("x"), 0), lt(var("y"), 5)
        assert fp(iff(a, b)) == fp(iff(b, a))

    def test_commutative_terms_are_sorted(self):
        assert fp(eq(var("x") + var("y"), 3)) == fp(eq(var("y") + var("x"), 3))

    def test_subtraction_is_not_commutative(self):
        assert fp(eq(var("x") - var("y"), 0)) != fp(eq(var("y") - var("x"), 0))


class TestSemanticDiscrimination:
    def test_strict_vs_nonstrict(self):
        assert fp(gt(var("x"), 0)) != fp(ge(var("x"), 0))

    def test_different_constants(self):
        assert fp(gt(var("x"), 0)) != fp(gt(var("x"), 1))

    def test_negation_matters(self):
        formula = gt(var("x"), 0)
        assert fp(formula) != fp(neg(formula))

    def test_quantifier_kind_matters(self):
        assert fp(exists(sym("x"), gt(var("x"), 0))) != fp(
            forall(sym("x"), gt(var("x"), 0))
        )

    def test_kind_separates_validity_from_satisfiability(self):
        formula = gt(var("x"), 0)
        assert fp(formula, "validity") != fp(formula, "satisfiability")

    def test_implication_direction_matters(self):
        a, b = gt(var("x"), 0), lt(var("y"), 5)
        assert fp(implies(a, b)) != fp(implies(b, a))

    def test_divides_atoms(self):
        assert fp(Divides(2, var("x"))) != fp(Divides(3, var("x")))


class TestTermCoverage:
    def test_store_select_and_ite_serialize(self):
        array = sym("A")
        formula = eq(
            Select(array, var("i")),
            Ite(gt(var("j"), 0), Const(1), Select(array, var("j"))),
        )
        text = canonical_form(formula)
        assert "sel" in text and "ite" in text
        assert fp(formula) == fp(formula)

    def test_store_serializes_structurally(self):
        array = sym("A")
        one = eq(Select(Store(array, var("i"), Const(3)), var("k")), Const(0))
        other = eq(Select(Store(array, var("i"), Const(4)), var("k")), Const(0))
        assert "(st " in canonical_form(one)
        assert fp(one) != fp(other)

    def test_quantified_array_symbol_does_not_collide_with_free_array(self):
        # The proof rules never quantify arrays, but the fingerprint must
        # stay sound if such a formula ever reaches the cache: binding the
        # array symbol is not the same query as reading a free array.
        bound = exists(sym("a"), lt(Const(5), Select(sym("a"), var("i"))))
        free = exists(sym("y"), lt(Const(5), Select(sym("a"), var("i"))))
        assert fp(bound) != fp(free)

    def test_bound_variable_inside_term(self):
        left = exists(sym("x"), eq(Add(var("x"), var("c")), 5))
        right = exists(sym("q"), eq(Add(var("q"), var("c")), 5))
        assert fp(left) == fp(right)

    def test_fingerprint_is_hex_sha256(self):
        digest = fp(gt(var("x"), 0))
        assert len(digest) == 64
        int(digest, 16)  # parses as hex
