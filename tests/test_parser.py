"""Tests for the lexer, parser and pretty-printer round-trip."""

import pytest

from repro.lang.ast import (
    ArrayAssign,
    Assert,
    Assign,
    Assume,
    BoolOp,
    CmpOp,
    Havoc,
    If,
    IntOp,
    Relate,
    Relax,
    Seq,
    Skip,
    While,
)
from repro.lang.parser import (
    ParseError,
    parse_bool,
    parse_expr,
    parse_program,
    parse_rel_bool,
    parse_statement,
    tokenize,
)
from repro.lang.pretty import pretty_program, pretty_stmt


class TestTokenizer:
    def test_keywords_and_identifiers(self):
        tokens = tokenize("relax while x_1 st")
        kinds = [(token.kind, token.text) for token in tokens[:-1]]
        assert ("KEYWORD", "relax") in kinds
        assert ("IDENT", "x_1") in kinds

    def test_comments_are_skipped(self):
        tokens = tokenize("x = 1; // a comment\n y = 2;")
        texts = [token.text for token in tokens]
        assert "comment" not in " ".join(texts)

    def test_multi_character_operators(self):
        tokens = tokenize("==> <= >= == != && || <=>")
        texts = [token.text for token in tokens if token.kind == "OP"]
        assert texts == ["==>", "<=", ">=", "==", "!=", "&&", "||", "<=>"]

    def test_unexpected_character_raises(self):
        with pytest.raises(ParseError):
            tokenize("x = 1; @")


class TestExpressionParsing:
    def test_precedence_multiplication_binds_tighter(self):
        expr = parse_expr("1 + 2 * 3")
        assert expr.op is IntOp.ADD
        assert expr.right.op is IntOp.MUL

    def test_unary_minus_literal(self):
        assert parse_expr("-5").value == -5

    def test_unary_minus_variable(self):
        expr = parse_expr("-x")
        assert expr.op is IntOp.SUB

    def test_min_max_calls(self):
        expr = parse_expr("min(x, max(y, 3))")
        assert expr.op is IntOp.MIN
        assert expr.right.op is IntOp.MAX

    def test_array_read(self):
        expr = parse_expr("A[i + 1]")
        assert expr.array == "A"

    def test_parenthesised_arithmetic(self):
        expr = parse_expr("(x + y) * 2")
        assert expr.op is IntOp.MUL


class TestBooleanParsing:
    def test_comparison(self):
        cond = parse_bool("x + 1 < y")
        assert cond.op is CmpOp.LT

    def test_parenthesised_comparison_with_connective(self):
        cond = parse_bool("(x < y) && !(x == 3)")
        assert cond.op is BoolOp.AND

    def test_parenthesised_arithmetic_inside_comparison(self):
        cond = parse_bool("(x + y) < z")
        assert cond.op is CmpOp.LT

    def test_implication(self):
        cond = parse_bool("x < 0 ==> y > 0")
        assert cond.op is BoolOp.IMPLIES

    def test_true_false(self):
        assert parse_bool("true").value is True
        assert parse_bool("false").value is False


class TestRelationalParsing:
    def test_tagged_variables(self):
        cond = parse_rel_bool("x<o> == x<r>")
        assert cond.op is CmpOp.EQ

    def test_tagged_array_read(self):
        cond = parse_rel_bool("A<o>[i<o>] <= A<r>[i<r>]")
        assert cond.op is CmpOp.LE

    def test_paper_swish_relate(self):
        text = "(num_r<o> < 10 && num_r<o> == num_r<r>) || (10 <= num_r<o> && 10 <= num_r<r>)"
        cond = parse_rel_bool(text)
        assert cond.op is BoolOp.OR

    def test_bad_tag_rejected(self):
        with pytest.raises(ParseError):
            parse_rel_bool("x<q> == 1")


class TestStatementParsing:
    def test_assignment(self):
        stmt = parse_statement("x = x + 1;")
        assert isinstance(stmt, Assign)

    def test_array_assignment(self):
        stmt = parse_statement("A[i] = 2 * x;")
        assert isinstance(stmt, ArrayAssign)

    def test_havoc_and_relax(self):
        stmt = parse_statement("havoc (x, y) st (x < y); relax (z) st (z >= 0);")
        assert isinstance(stmt, Seq)
        assert isinstance(stmt.first, Havoc)
        assert isinstance(stmt.second, Relax)

    def test_assert_assume_relate(self):
        stmt = parse_statement("assert x > 0; assume y > 0; relate l: x<o> == x<r>;")
        kinds = [type(node) for node in stmt.walk()]
        assert Assert in kinds and Assume in kinds and Relate in kinds

    def test_if_else(self):
        stmt = parse_statement("if (x < 0) { x = 0 - x; } else { skip; }")
        assert isinstance(stmt, If)
        assert isinstance(stmt.else_branch, Skip)

    def test_if_without_else(self):
        stmt = parse_statement("if (x < 0) { x = 0; }")
        assert isinstance(stmt, If)
        assert isinstance(stmt.else_branch, Skip)

    def test_while_with_invariants(self):
        stmt = parse_statement(
            "while (i < n) invariant (i <= n) rel_invariant (i<o> == i<r>) { i = i + 1; }"
        )
        assert isinstance(stmt, While)
        assert stmt.invariant is not None
        assert stmt.rel_invariant is not None

    def test_missing_semicolon_raises(self):
        with pytest.raises(ParseError):
            parse_statement("x = 1")


class TestProgramParsing:
    SOURCE = """
    vars x, y, e;
    arrays A;
    e = 2;
    y = A[0];
    relax (x) st (y - e <= x && x <= y + e);
    relate acc: (x<o> - x<r> <= e<o>) && (x<r> - x<o> <= e<o>);
    assert x <= y + 2;
    """

    def test_declarations(self):
        program = parse_program(self.SOURCE, "demo")
        assert program.variables == ("x", "y", "e")
        assert program.arrays == ("A",)

    def test_roundtrip_through_pretty_printer(self):
        program = parse_program(self.SOURCE, "demo")
        reparsed = parse_program(pretty_program(program), "demo")
        assert reparsed.body == program.body
        assert reparsed.variables == program.variables

    def test_roundtrip_preserves_while_annotations(self):
        source = """
        i = 0;
        while (i < n) invariant (i <= n) rel_invariant (i<o> == i<r>) { i = i + 1; }
        """
        stmt = parse_statement(source)
        reparsed = parse_statement(pretty_stmt(stmt))
        assert reparsed == stmt

    def test_parse_error_reports_location(self):
        with pytest.raises(ParseError) as excinfo:
            parse_program("x = ;")
        assert "line" in str(excinfo.value)
