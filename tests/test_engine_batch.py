"""Tests for batch verification and the ``repro verify-batch`` CLI.

The acceptance bar for the engine: warm-cache batch re-verification of the
case studies issues zero solver calls, and batch/parallel verdicts are
identical to the serial per-program path.
"""

import json

import pytest

from repro.casestudies import all_case_studies
from repro.cli import main
from repro.engine import (
    ObligationEngine,
    case_study_items,
    directory_items,
    verify_batch,
)


@pytest.fixture(scope="module")
def serial_reports():
    """The classic serial per-program verdicts, as ground truth."""
    return {cls().name: cls().verify() for cls in all_case_studies()}


class TestBatchItems:
    def test_all_case_studies_by_default(self):
        items = case_study_items()
        assert [item.name for item in items] == [cls().name for cls in all_case_studies()]

    def test_selection_by_name(self):
        items = case_study_items(["water-parallelization"])
        assert len(items) == 1 and items[0].name == "water-parallelization"

    def test_aliases_of_one_study_yield_one_item(self):
        items = case_study_items(["lu", "lu-approximate-memory", "LUApproximateMemory"])
        assert [item.name for item in items] == ["lu-approximate-memory"]

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown case study"):
            case_study_items(["no-such-study"])

    def test_directory_items(self, tmp_path):
        (tmp_path / "a.rlx").write_text("vars x; x = 1; assert x > 0;")
        (tmp_path / "b.rlx").write_text("vars y; y = 2;")
        (tmp_path / "ignored.txt").write_text("not a program")
        items = directory_items(str(tmp_path))
        assert [item.name for item in items] == ["a", "b"]

    def test_directory_items_requires_directory(self, tmp_path):
        with pytest.raises(ValueError, match="not a directory"):
            directory_items(str(tmp_path / "missing"))


class TestBatchVerification:
    def test_batch_matches_serial_verdicts(self, serial_reports):
        report = verify_batch(case_study_items())
        assert report.all_verified
        assert len(report.programs) == len(serial_reports)
        for result in report.programs:
            serial = serial_reports[result.name]
            assert result.verified == serial.verified
            assert result.report.guarantees() == serial.guarantees()
            for layer in ("original", "relaxed"):
                batch_layer = getattr(result.report, layer)
                serial_layer = getattr(serial, layer)
                assert len(batch_layer.results) == len(serial_layer.results)
                assert [r.status for r in batch_layer.results] == [
                    r.status for r in serial_layer.results
                ]

    def test_parallel_batch_matches_serial_verdicts(self, serial_reports):
        engine = ObligationEngine(jobs=2)
        report = verify_batch(case_study_items(), engine=engine)
        assert report.all_verified
        for result in report.programs:
            serial = serial_reports[result.name]
            for layer in ("original", "relaxed"):
                assert [r.status for r in getattr(result.report, layer).results] == [
                    r.status for r in getattr(serial, layer).results
                ]

    def test_warm_cache_issues_zero_solver_calls(self, tmp_path):
        cold = ObligationEngine.for_batch(cache_dir=str(tmp_path))
        cold_report = verify_batch(case_study_items(), engine=cold)
        assert cold_report.all_verified
        assert cold.statistics.solver_calls > 0

        warm = ObligationEngine.for_batch(cache_dir=str(tmp_path))
        warm_report = verify_batch(case_study_items(), engine=warm)
        assert warm_report.all_verified
        assert warm.statistics.solver_calls == 0
        assert warm.statistics.cache_hits == warm.statistics.obligations
        # Verdicts replayed from the cache match the cold run exactly.
        for cold_result, warm_result in zip(cold_report.programs, warm_report.programs):
            for layer in ("original", "relaxed"):
                assert [r.status for r in getattr(cold_result.report, layer).results] == [
                    r.status for r in getattr(warm_result.report, layer).results
                ]

    def test_shared_obligations_across_programs_hit_in_batch(self, tmp_path):
        # The same tiny program twice: the second copy's obligations are
        # answered from the in-memory cache within a single batch.
        (tmp_path / "one.rlx").write_text("vars x; x = 1; assert x > 0;")
        (tmp_path / "two.rlx").write_text("vars x; x = 1; assert x > 0;")
        engine = ObligationEngine.for_batch()
        report = verify_batch(directory_items(str(tmp_path)), engine=engine)
        assert report.all_verified
        assert engine.statistics.dedup_hits >= 1

    def test_unparsable_program_does_not_sink_the_batch(self, tmp_path):
        (tmp_path / "broken.rlx").write_text("this is not a program ???")
        (tmp_path / "good.rlx").write_text("vars x; x = 1; assert x > 0;")
        items = directory_items(str(tmp_path))
        assert [item.name for item in items] == ["broken", "good"]
        assert items[0].program is None and items[0].error
        report = verify_batch(items)
        assert not report.all_verified
        by_name = {result.name: result for result in report.programs}
        assert not by_name["broken"].verified
        assert "parse" in by_name["broken"].error
        assert by_name["good"].verified

    def test_cli_survives_unparsable_file_in_dir(self, tmp_path, capsys):
        (tmp_path / "broken.rlx").write_text("???")
        (tmp_path / "good.rlx").write_text("vars x; x = 1; assert x > 0;")
        assert main(["verify-batch", "--dir", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "ERROR" in out and "good" in out

    def test_budget_implies_portfolio_path(self):
        engine = ObligationEngine(budget_seconds=30.0)
        assert engine.portfolio is not None

    def test_unverifiable_program_reports_not_verified(self, tmp_path):
        (tmp_path / "bad.rlx").write_text("vars x; assert x > 0;")
        report = verify_batch(directory_items(str(tmp_path)))
        assert not report.all_verified
        assert len(report.programs) == 1
        assert not report.programs[0].verified
        payload = report.as_dict()
        assert payload["all_verified"] is False
        assert payload["programs"][0]["layers"]["original"]["undischarged"]

    def test_report_json_is_serialisable(self):
        report = verify_batch(case_study_items(["water-parallelization"]))
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["all_verified"] is True
        assert payload["programs"][0]["name"] == "water-parallelization"
        assert "engine" in payload and "cache" in payload

    def test_summary_mentions_verdict_and_engine(self):
        report = verify_batch(case_study_items(["water-parallelization"]))
        text = report.summary()
        assert "VERIFIED" in text
        assert "solver calls" in text


class TestVerifyBatchCLI:
    def test_cli_all_case_studies(self, capsys):
        assert main(["verify-batch"]) == 0
        out = capsys.readouterr().out
        assert "ALL VERIFIED" in out
        for cls in all_case_studies():
            assert cls().name in out

    def test_cli_named_case_study_with_json(self, capsys, tmp_path):
        json_path = tmp_path / "report.json"
        assert (
            main(
                [
                    "verify-batch",
                    "water-parallelization",
                    "--cache-dir",
                    str(tmp_path / "cache"),
                    "--json",
                    str(json_path),
                ]
            )
            == 0
        )
        payload = json.loads(json_path.read_text())
        assert payload["all_verified"] is True

    def test_cli_directory_mode_failure_exit_code(self, capsys, tmp_path):
        (tmp_path / "bad.rlx").write_text("vars x; assert x > 0;")
        assert main(["verify-batch", "--dir", str(tmp_path)]) == 1
        assert "NOT" in capsys.readouterr().out

    def test_cli_rejects_names_and_dir_together(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["verify-batch", "water-parallelization", "--dir", str(tmp_path)])

    def test_cli_unknown_name(self):
        with pytest.raises(SystemExit):
            main(["verify-batch", "nope"])

    def test_cli_help_epilog_documents_batch_surface(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "verify-batch" in out
        assert "--cache-dir" in out
        assert "--jobs" in out
