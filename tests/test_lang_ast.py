"""Tests for the language AST, builder helpers and operator semantics."""

import pytest

from repro.lang import ast
from repro.lang import builder as b
from repro.lang.ast import (
    Assign,
    BinOp,
    BoolOp,
    CmpOp,
    Execution,
    IntLit,
    IntOp,
    Relate,
    Relax,
    Seq,
    Skip,
    Var,
    While,
)


class TestIntOp:
    def test_add_sub_mul(self):
        assert IntOp.ADD.apply(2, 3) == 5
        assert IntOp.SUB.apply(2, 3) == -1
        assert IntOp.MUL.apply(4, -3) == -12

    def test_floor_division(self):
        assert IntOp.DIV.apply(7, 2) == 3
        assert IntOp.DIV.apply(-7, 2) == -4

    def test_modulo(self):
        assert IntOp.MOD.apply(7, 3) == 1
        assert IntOp.MOD.apply(-7, 3) == 2

    def test_min_max(self):
        assert IntOp.MIN.apply(2, 5) == 2
        assert IntOp.MAX.apply(2, 5) == 5

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            IntOp.DIV.apply(1, 0)


class TestCmpOp:
    @pytest.mark.parametrize(
        "op,left,right,expected",
        [
            (CmpOp.LT, 1, 2, True),
            (CmpOp.LE, 2, 2, True),
            (CmpOp.GT, 3, 2, True),
            (CmpOp.GE, 1, 2, False),
            (CmpOp.EQ, 4, 4, True),
            (CmpOp.NE, 4, 4, False),
        ],
    )
    def test_apply(self, op, left, right, expected):
        assert op.apply(left, right) is expected

    @pytest.mark.parametrize("op", list(CmpOp))
    def test_negate_is_involution_on_semantics(self, op):
        for left in range(-2, 3):
            for right in range(-2, 3):
                assert op.negate().apply(left, right) == (not op.apply(left, right))

    @pytest.mark.parametrize("op", list(CmpOp))
    def test_flip_swaps_operands(self, op):
        for left in range(-2, 3):
            for right in range(-2, 3):
                assert op.flip().apply(right, left) == op.apply(left, right)


class TestBoolOp:
    def test_implication_truth_table(self):
        assert BoolOp.IMPLIES.apply(True, False) is False
        assert BoolOp.IMPLIES.apply(False, False) is True
        assert BoolOp.IMPLIES.apply(True, True) is True

    def test_iff(self):
        assert BoolOp.IFF.apply(True, True) is True
        assert BoolOp.IFF.apply(True, False) is False


class TestConstructors:
    def test_seq_empty_is_skip(self):
        assert ast.seq() == Skip()

    def test_seq_single_returns_statement(self):
        stmt = Assign("x", IntLit(1))
        assert ast.seq(stmt) is stmt

    def test_seq_right_associates(self):
        s1, s2, s3 = Assign("a", IntLit(1)), Assign("b", IntLit(2)), Assign("c", IntLit(3))
        result = ast.seq(s1, s2, s3)
        assert isinstance(result, Seq)
        assert result.first == s1
        assert isinstance(result.second, Seq)

    def test_conj_empty_is_true(self):
        assert ast.conj() == ast.TRUE

    def test_disj_empty_is_false(self):
        assert ast.disj() == ast.FALSE

    def test_int_expr_coercions(self):
        assert ast.int_expr(5) == IntLit(5)
        assert ast.int_expr("x") == Var("x")
        expr = BinOp(IntOp.ADD, IntLit(1), IntLit(2))
        assert ast.int_expr(expr) is expr

    def test_int_expr_rejects_bool(self):
        with pytest.raises(TypeError):
            ast.int_expr(True)

    def test_rel_expr_rejects_bool(self):
        with pytest.raises(TypeError):
            ast.rel_expr(True)

    def test_original_and_relaxed_tags(self):
        assert ast.original("x").execution is Execution.ORIGINAL
        assert ast.relaxed("x").execution is Execution.RELAXED


class TestBuilder:
    def test_program_collects_statements(self):
        program = b.program("p", b.assign("x", 1), b.assert_(b.ge("x", 0)))
        statements = list(program.statements())
        assert any(isinstance(stmt, Assign) for stmt in statements)

    def test_relate_labels(self):
        program = b.program(
            "p",
            b.relate("one", b.same("x")),
            b.relate("two", b.same("y")),
        )
        assert program.relate_labels() == ("one", "two")

    def test_within_builds_two_sided_bound(self):
        condition = b.within("x", 3)
        text = str(condition)
        assert "x<o>" in text and "x<r>" in text

    def test_all_same_conjoins(self):
        condition = b.all_same("x", "y")
        assert "x<o>" in str(condition) and "y<r>" in str(condition)

    def test_while_accepts_invariants(self):
        loop = b.while_(
            b.lt("i", "n"),
            b.assign("i", b.add("i", 1)),
            invariant=b.le("i", "n"),
            rel_invariant=b.same("i"),
        )
        assert isinstance(loop, While)
        assert loop.invariant is not None
        assert loop.rel_invariant is not None

    def test_relax_single_target_string(self):
        stmt = b.relax("x", b.true)
        assert isinstance(stmt, Relax)
        assert stmt.targets == ("x",)

    def test_havoc_multiple_targets(self):
        stmt = b.havoc(["x", "y"], b.true)
        assert stmt.targets == ("x", "y")


class TestNodeTraversal:
    def test_walk_visits_all_nodes(self):
        program = b.program(
            "p",
            b.assign("x", b.add("x", 1)),
            b.if_(b.gt("x", 0), b.assign("y", "x"), b.skip),
        )
        nodes = list(program.body.walk())
        # The assignment target is a plain string, but every expression node is
        # reachable, including the Var read inside the if's then-branch.
        variable_reads = [node.name for node in nodes if isinstance(node, Var)]
        assert variable_reads.count("x") >= 2

    def test_str_representations(self):
        stmt = b.relate("l", b.same("x"))
        assert "relate l" in str(stmt)
        assert "skip" == str(Skip())
        assert "havoc" in str(b.havoc("x", b.true))
