"""Tests for formula evaluation over concrete valuations."""

import pytest

from repro.logic import formula as F
from repro.logic.evaluate import EvaluationError, Valuation, evaluate, evaluate_term
from repro.logic.formula import (
    Const,
    Divides,
    Ite,
    Select,
    Store,
    Symbol,
    exists,
    forall,
    sym,
    var,
)


def valuation(**scalars):
    return Valuation(scalars={sym(name): value for name, value in scalars.items()})


class TestTermEvaluation:
    def test_arithmetic(self):
        term = (var("x") + 2) * var("y") - Const(1)
        assert evaluate_term(term, valuation(x=3, y=4)) == 19

    def test_division_and_modulo_floor_semantics(self):
        assert evaluate_term(F.Div(Const(-7), Const(2)), Valuation()) == -4
        assert evaluate_term(F.Mod(Const(-7), Const(3)), Valuation()) == 2

    def test_division_by_zero_raises(self):
        with pytest.raises(EvaluationError):
            evaluate_term(F.Div(var("x"), Const(0)), valuation(x=1))

    def test_min_max(self):
        assert evaluate_term(F.Min(Const(2), Const(-3)), Valuation()) == -3
        assert evaluate_term(F.Max(Const(2), Const(-3)), Valuation()) == 2

    def test_ite(self):
        term = Ite(F.lt(var("x"), Const(0)), Const(-1), Const(1))
        assert evaluate_term(term, valuation(x=-5)) == -1
        assert evaluate_term(term, valuation(x=5)) == 1

    def test_select(self):
        v = Valuation(scalars={sym("i"): 1}, arrays={Symbol("A"): {0: 10, 1: 20}})
        assert evaluate_term(Select(Symbol("A"), var("i")), v) == 20

    def test_select_missing_index_raises(self):
        v = Valuation(arrays={Symbol("A"): {0: 10}})
        with pytest.raises(EvaluationError):
            evaluate_term(Select(Symbol("A"), Const(5)), v)

    def test_missing_symbol_raises(self):
        with pytest.raises(EvaluationError):
            evaluate_term(var("missing"), Valuation())

    def test_store_cannot_be_evaluated(self):
        with pytest.raises(EvaluationError):
            evaluate_term(Store(Symbol("A"), Const(0), Const(1)), Valuation())


class TestFormulaEvaluation:
    def test_atoms_and_connectives(self):
        formula = F.conj(F.lt(var("x"), Const(5)), F.ne(var("x"), Const(0)))
        assert evaluate(formula, valuation(x=3)) is True
        assert evaluate(formula, valuation(x=0)) is False

    def test_implication_and_iff(self):
        formula = F.implies(F.gt(var("x"), Const(0)), F.ge(var("x"), Const(1)))
        assert evaluate(formula, valuation(x=0)) is True
        assert evaluate(formula, valuation(x=2)) is True
        iff = F.iff(F.gt(var("x"), Const(0)), F.lt(var("x"), Const(0)))
        assert evaluate(iff, valuation(x=1)) is False

    def test_divides(self):
        assert evaluate(Divides(3, var("x")), valuation(x=9)) is True
        assert evaluate(Divides(3, var("x")), valuation(x=10)) is False

    def test_quantifiers_over_finite_domain(self):
        domain = range(-3, 4)
        formula = exists(sym("y"), F.eq(var("y") * Const(2), var("x")))
        assert evaluate(formula, valuation(x=4), domain) is True
        assert evaluate(formula, valuation(x=3), domain) is False
        universal = forall(sym("y"), F.le(var("y"), Const(3)))
        assert evaluate(universal, Valuation(), domain) is True

    def test_quantifier_without_domain_raises(self):
        formula = exists(sym("y"), F.eq(var("y"), Const(0)))
        with pytest.raises(EvaluationError):
            evaluate(formula, Valuation())

    def test_valuation_with_scalar_is_functional(self):
        base = valuation(x=1)
        updated = base.with_scalar(sym("x"), 2)
        assert base.scalar(sym("x")) == 1
        assert updated.scalar(sym("x")) == 2
