"""Tests for the interned formula core and the shared traversal framework.

Covers:

* hash-consing invariants (structural equality == identity, pickling
  re-interns, intern statistics),
* correctness of the cached structural queries (``free_symbols``,
  ``formula_size``, ``formula_arrays``, ``quantifier_depth``) against
  independent reference recursions — including *after* transforms,
* the identity-preserving behaviour of substitution and the traversal
  helpers (untouched subtrees come back as the same object),
* ``with_tag`` / ``with_scalar`` returning ``self`` when nothing changes.
"""

import pickle

import pytest

from repro.logic import formula as F
from repro.logic.evaluate import Valuation
from repro.logic.formula import (
    And,
    Atom,
    Const,
    Divides,
    Exists,
    Forall,
    Formula,
    Iff,
    Implies,
    Ite,
    Not,
    Or,
    Rel,
    Select,
    Store,
    SymTerm,
    Symbol,
    Tag,
    Term,
    conj,
    disj,
    exists,
    forall,
    formula_arrays,
    formula_size,
    free_symbols,
    intern_stats,
    quantifier_depth,
    sym,
    sym_r,
    term_children,
    var,
)
from repro.logic.subst import rename_arrays, substitute
from repro.logic.traverse import (
    TypeDispatcher,
    fold,
    formula_subformulas,
    iter_nodes,
    node_children,
    rebuild,
    replace_node,
    transform,
)
from repro.solver.normalize import to_nnf


# -- reference recursions (independent of the node caches) --------------------


def ref_free(node, bound=frozenset()):
    if isinstance(node, Const) or isinstance(node, (F.TrueF, F.FalseF)):
        return frozenset()
    if isinstance(node, SymTerm):
        return frozenset() if node.symbol in bound else frozenset({node.symbol})
    if isinstance(node, (Exists, Forall)):
        return ref_free(node.body, bound | {node.symbol})
    return frozenset().union(*[ref_free(c, bound) for c in node_children(node)] or [frozenset()])


def ref_size(node):
    return 1 + sum(ref_size(c) for c in node_children(node))


def ref_qdepth(node):
    inner = max((ref_qdepth(c) for c in node_children(node)), default=0)
    if isinstance(node, (Exists, Forall)):
        return 1 + inner
    return inner


# -- interning ----------------------------------------------------------------


class TestInterning:
    def test_equal_construction_is_identical(self):
        a = conj(F.lt(var("x"), 3), F.gt(var("y"), 0))
        b = conj(F.lt(var("x"), 3), F.gt(var("y"), 0))
        assert a is b

    def test_equality_is_identity(self):
        a = F.eq(var("x"), 1)
        b = F.eq(var("x"), 2)
        assert a != b
        assert a == F.eq(var("x"), 1)

    def test_distinct_classes_do_not_collide(self):
        assert F.Add(var("x"), var("y")) is not F.Sub(var("x"), var("y"))
        assert And((F.TRUE,)) is not Or((F.TRUE,))

    def test_hash_is_precomputed_and_stable(self):
        a = exists(sym("x"), F.lt(var("x"), var("y")))
        assert hash(a) == hash(exists(sym("x"), F.lt(var("x"), var("y"))))
        assert len({a, exists(sym("x"), F.lt(var("x"), var("y")))}) == 1

    def test_nodes_are_immutable(self):
        atom = F.lt(var("x"), 0)
        with pytest.raises(AttributeError):
            atom.rel = Rel.GT

    def test_pickle_reinterns(self):
        original = forall(sym("k"), Implies(F.ge(var("k"), 0), F.ge(var("k") + 1, 1)))
        clone = pickle.loads(pickle.dumps(original))
        assert clone is original

    def test_intern_stats_counts_hits(self):
        F.reset_intern_stats()
        before = intern_stats()
        formula = F.le(var("p"), var("q"))
        again = F.le(var("p"), var("q"))
        after = intern_stats()
        assert again is formula
        assert after["hits"] > before["hits"]
        assert 0.0 <= after["hit_rate"] <= 1.0

    def test_repr_is_constructor_like(self):
        assert repr(Const(3)) == "Const(value=3)"
        assert "Atom(" in repr(F.lt(var("x"), 0))


# -- cached structural queries ------------------------------------------------


SAMPLE_FORMULAS = [
    F.TRUE,
    F.lt(var("x") + var("y") * 2, 7),
    Divides(3, var("n")),
    exists(sym("x"), conj(F.gt(var("x"), 0), F.lt(var("x"), var("y")))),
    forall([sym("a"), sym("b")], Iff(F.eq(var("a"), var("b")), F.le(var("a"), var("b")))),
    F.eq(Select(sym("A"), var("i")), Ite(F.gt(var("j"), 0), Const(1), Select(sym("A"), var("j")))),
    F.eq(Select(Store(sym("A"), var("i"), Const(3)), var("k")), Const(0)),
    Not(Implies(F.gt(var("x"), 0), exists(sym("z"), F.eq(var("z"), var("x"))))),
]


class TestCachedQueries:
    @pytest.mark.parametrize("formula", SAMPLE_FORMULAS, ids=str)
    def test_free_symbols_matches_reference(self, formula):
        assert free_symbols(formula) == ref_free(formula)

    @pytest.mark.parametrize("formula", SAMPLE_FORMULAS, ids=str)
    def test_quantifier_depth_matches_reference(self, formula):
        assert quantifier_depth(formula) == ref_qdepth(formula)

    def test_formula_size_counts_nodes(self):
        # Size counts terms and connectives but not array symbols, exactly
        # like the historical recursion it replaced.
        assert formula_size(F.lt(var("x"), 0)) == 3
        assert formula_size(conj(F.lt(var("x"), 0), F.gt(var("y"), 1))) == 7
        assert formula_size(exists(sym("x"), F.lt(var("x"), 0))) == 4

    def test_caches_stay_correct_after_substitute(self):
        formula = exists(sym("x"), conj(F.lt(var("x"), var("y")), F.gt(var("z"), 0)))
        result = substitute(formula, {sym("y"): var("w") + 1})
        assert free_symbols(result) == ref_free(result)
        assert formula_size(result) == ref_size(result)
        assert quantifier_depth(result) == ref_qdepth(result)

    def test_caches_stay_correct_after_nnf(self):
        formula = Not(Implies(F.gt(var("x"), 0), forall(sym("k"), F.le(var("k"), var("x")))))
        result = to_nnf(formula)
        assert free_symbols(result) == ref_free(result)
        assert formula_size(result) == ref_size(result)
        assert quantifier_depth(result) == ref_qdepth(result)

    def test_caches_stay_correct_after_rename_arrays(self):
        formula = F.eq(Select(sym("A"), var("i")), Const(0))
        renamed = rename_arrays(formula, {sym("A"): sym("B")})
        assert formula_arrays(renamed) == {sym("B")}
        assert free_symbols(renamed) == {sym("i")}


# -- identity preservation ----------------------------------------------------


class TestIdentityPreservation:
    def test_substitute_with_disjoint_domain_returns_same_object(self):
        formula = conj(F.lt(var("x"), 3), exists(sym("y"), F.gt(var("y"), var("x"))))
        assert substitute(formula, {sym("unrelated"): Const(1)}) is formula

    def test_substitute_shares_untouched_subtrees(self):
        left = F.lt(var("x"), 3)
        right = F.gt(var("y"), 0)
        result = substitute(conj(left, right), {sym("y"): Const(5)})
        assert isinstance(result, And)
        assert result.operands[0] is left

    def test_rename_arrays_without_match_returns_same_object(self):
        formula = F.eq(Select(sym("A"), var("i")), Const(0))
        assert rename_arrays(formula, {sym("Z"): sym("W")}) is formula

    def test_rebuild_identity(self):
        formula = conj(F.lt(var("x"), 3), F.gt(var("y"), 0))
        assert rebuild(formula, node_children(formula)) is formula

    def test_transform_identity(self):
        formula = Implies(F.lt(var("x"), 3), F.gt(var("y"), 0))
        assert transform(formula, lambda node: node) is formula

    def test_with_tag_returns_self_when_unchanged(self):
        plain = sym("x")
        tagged = sym_r("x")
        assert plain.with_tag(None) is plain
        assert tagged.with_tag(Tag.RELAXED) is tagged
        assert plain.with_tag(Tag.RELAXED) == tagged

    def test_with_scalar_returns_self_when_unchanged(self):
        valuation = Valuation(scalars={sym("x"): 3})
        assert valuation.with_scalar(sym("x"), 3) is valuation
        assert valuation.with_scalar(sym("x"), 4) is not valuation


# -- traversal framework ------------------------------------------------------


class TestTraversals:
    def test_iter_nodes_is_postorder_and_deduplicated(self):
        shared = F.lt(var("x"), 0)
        formula = conj(shared, disj(shared, F.gt(var("y"), 1)))
        nodes = list(iter_nodes(formula))
        assert nodes.count(shared) == 1
        assert nodes.index(shared) < nodes.index(formula)
        # children come before parents
        for parent in nodes:
            for child in node_children(parent):
                assert nodes.index(child) < nodes.index(parent)

    def test_fold_counts_distinct_nodes_once(self):
        shared = F.lt(var("x"), 0)
        formula = conj(shared, shared, F.gt(var("y"), 1))
        visits = []
        fold(formula, lambda node, children: visits.append(node))
        assert visits.count(shared) == 1

    def test_replace_node_replaces_all_occurrences(self):
        target = var("x")
        formula = conj(F.lt(target, 3), F.gt(target + 1, 0))
        replaced = replace_node(formula, target, var("z"))
        assert free_symbols(replaced) == {sym("z")}

    def test_replace_node_does_not_enter_ite_conditions_from_terms(self):
        target = var("x")
        term = Ite(F.gt(target, 0), target, Const(0))
        replaced = replace_node(term, target, var("z"))
        assert isinstance(replaced, Ite)
        assert replaced.condition is term.condition  # condition untouched
        assert replaced.then_term == var("z")

    def test_formula_subformulas_skips_terms(self):
        formula = Implies(F.lt(var("x"), 0), F.TRUE)
        assert formula_subformulas(formula) == (formula.antecedent, formula.consequent)
        assert formula_subformulas(F.lt(var("x"), 0)) == ()

    def test_type_dispatcher_dispatches_and_rejects(self):
        dispatch = TypeDispatcher("demo")

        @dispatch.register(Atom, Divides)
        def _atomic(node):
            return "atomic"

        assert dispatch(F.lt(var("x"), 0)) == "atomic"
        with pytest.raises(TypeError, match="unknown demo node"):
            dispatch(F.TRUE)
        with pytest.raises(ValueError, match="duplicate handler"):
            dispatch.register(Atom)(lambda node: None)
