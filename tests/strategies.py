"""Shared hypothesis strategies for program- and formula-level properties.

One home for the generators that used to be duplicated (and drift) across
``test_relaxations_properties.py`` and ``test_formula_core_properties.py``,
also consumed by the fuzz synthesizer's own property suite:

* **program side** — ``base_programs`` (the summation-shaped program every
  relaxation transform applies to), ``transform_applications`` (one
  arbitrary transform with arbitrary small parameters), and
  ``flatten_stmt`` (AST equality modulo ``Seq`` association);
* **formula side** — ``terms`` / ``atoms`` / ``formulas`` (with
  quantifiers) / ``array_formulas`` over a tiny name pool and finite
  evaluation ``DOMAIN``, plus the reference recursions ``ref_free`` /
  ``ref_size`` the cached structural queries are pinned against.
"""

from hypothesis import strategies as st

from repro.lang import builder as b
from repro.lang.ast import Assign, If, Seq, While
from repro.logic import formula as F
from repro.logic.evaluate import Valuation
from repro.logic.formula import Const, Exists, Forall, Select, SymTerm, var, sym
from repro.logic.traverse import node_children
from repro.relaxations.transforms import (
    approximate_memoization,
    approximate_reads,
    dynamic_knob,
    eliminate_synchronization,
    perforate_loop,
    restrict_relax,
    sample_reduction,
    skip_tasks,
)

# ---------------------------------------------------------------------------
# Program side
# ---------------------------------------------------------------------------

counters = st.sampled_from(["i", "k"])
bounds = st.integers(min_value=1, max_value=9)


@st.composite
def base_programs(draw):
    """A summation-style program plus the handles transforms need.

    Returns ``(program, loop, read, compute, counter)`` — the loop, array
    read and computation statements are the anchor points the individual
    transforms attach to.
    """
    counter = draw(counters)
    extra = draw(st.integers(min_value=0, max_value=3))
    use_branch = draw(st.booleans())
    body = [b.assign("s", b.add("s", counter))]
    if use_branch:
        body.append(
            b.if_(
                b.gt("s", extra),
                b.block(b.assign("t", "s"), b.assign("s", b.sub("s", 1))),
            )
        )
    body.append(b.assign(counter, b.add(counter, 1)))
    loop = While(
        condition=b.lt(counter, "n"),
        body=b.block(*body),
        invariant=b.true,
    )
    read = Assign("v", b.aread("A", counter))
    compute = Assign("r", b.mul("arg", 2))
    program = b.program(
        f"gen-{counter}-{extra}",
        b.assign("s", 0),
        b.assign("t", 0),
        b.assign(counter, 0),
        loop,
        read,
        compute,
        variables=(
            "s", "t", counter, "n", "v", "e", "r", "arg",
            "cached_arg", "cached_r", "tasks", "samples", "population",
        ),
        arrays=("A", "RS"),
    )
    return program, loop, read, compute, counter


@st.composite
def transform_applications(draw):
    """Apply one arbitrary transform with arbitrary small parameters."""
    program, loop, read, compute, counter = draw(base_programs())
    choice = draw(st.integers(min_value=0, max_value=7))
    if choice == 0:
        return perforate_loop(
            program, loop, counter=counter,
            max_stride=draw(st.integers(min_value=2, max_value=6)),
        )
    if choice == 1:
        return dynamic_knob(
            program, knob="n", floor=draw(st.integers(min_value=0, max_value=5))
        )
    if choice == 2:
        return skip_tasks(
            program, remaining_tasks_var="tasks",
            max_skipped=draw(st.integers(min_value=1, max_value=5)),
        )
    if choice == 3:
        return sample_reduction(
            program,
            sample_count_var="samples",
            population_var="population",
            minimum_fraction_percent=draw(st.integers(min_value=1, max_value=100)),
        )
    if choice == 4:
        return approximate_reads(
            program, value_var="v", error_bound_var="e", insert_after=read
        )
    if choice == 5:
        return approximate_memoization(
            program,
            result_var="r",
            argument_var="arg",
            cached_argument_var="cached_arg",
            cached_result_var="cached_r",
            argument_tolerance=draw(st.integers(min_value=0, max_value=4)),
            result_tolerance=draw(st.integers(min_value=0, max_value=4)),
            insert_after=compute,
        )
    if choice == 6:
        return eliminate_synchronization(program, racy_arrays=("RS",))
    # restrict an inserted relax: first insert one, then strengthen it.
    knobbed = dynamic_knob(program, knob="n", floor=2)
    delta = draw(st.integers(min_value=0, max_value=3))
    return restrict_relax(
        knobbed.program,
        knobbed.inserted_relax[0],
        b.and_(
            b.le(b.sub("original_n", delta), "n"),
            b.le("n", b.add("original_n", delta)),
        ),
    )


def flatten_stmt(stmt):
    """Flatten nested sequences: round-trip equality holds modulo the
    (semantically irrelevant) association of ``Seq``."""
    if isinstance(stmt, Seq):
        return flatten_stmt(stmt.first) + flatten_stmt(stmt.second)
    if isinstance(stmt, If):
        return [
            (
                "if",
                stmt.condition,
                tuple(flatten_stmt(stmt.then_branch)),
                tuple(flatten_stmt(stmt.else_branch)),
            )
        ]
    if isinstance(stmt, While):
        return [
            (
                "while",
                stmt.condition,
                stmt.invariant,
                stmt.rel_invariant,
                tuple(flatten_stmt(stmt.body)),
            )
        ]
    return [stmt]


# ---------------------------------------------------------------------------
# Formula side
# ---------------------------------------------------------------------------

NAMES = ["x", "y", "z"]
names = st.sampled_from(NAMES)
small_ints = st.integers(min_value=-4, max_value=4)
DOMAIN = range(-3, 4)


@st.composite
def terms(draw, depth=1):
    if depth == 0 or draw(st.booleans()):
        if draw(st.booleans()):
            return var(draw(names))
        return Const(draw(small_ints))
    op = draw(st.sampled_from([F.Add, F.Sub, F.Mul, F.Min, F.Max]))
    return op(draw(terms(depth=depth - 1)), draw(terms(depth=depth - 1)))


@st.composite
def atoms(draw):
    rel = draw(st.sampled_from([F.lt, F.le, F.gt, F.ge, F.eq, F.ne]))
    return rel(draw(terms()), draw(terms()))


@st.composite
def formulas(draw, depth=2):
    if depth == 0:
        return draw(atoms())
    choice = draw(st.integers(min_value=0, max_value=5))
    if choice == 0:
        return draw(atoms())
    if choice == 1:
        return F.neg(draw(formulas(depth=depth - 1)))
    if choice == 2:
        return F.conj(
            draw(formulas(depth=depth - 1)), draw(formulas(depth=depth - 1))
        )
    if choice == 3:
        return F.disj(
            draw(formulas(depth=depth - 1)), draw(formulas(depth=depth - 1))
        )
    quantifier = Exists if draw(st.booleans()) else Forall
    return quantifier(sym(draw(names)), draw(formulas(depth=depth - 1)))


@st.composite
def array_formulas(draw, depth=1):
    """Formulas whose atoms read ``A`` at simple indices."""
    index = (
        var(draw(names)) if draw(st.booleans()) else Const(draw(st.integers(-2, 2)))
    )
    read = Select(sym("A"), index)
    rel = draw(st.sampled_from([F.lt, F.le, F.eq, F.ge]))
    atom = rel(read, draw(terms()))
    if depth == 0:
        return atom
    choice = draw(st.integers(min_value=0, max_value=2))
    if choice == 0:
        return atom
    if choice == 1:
        return F.conj(atom, draw(array_formulas(depth=depth - 1)))
    return F.disj(F.neg(atom), draw(array_formulas(depth=depth - 1)))


def full_valuation(draw):
    """A valuation over the whole name pool (for ``st.data()`` draws)."""
    return Valuation(scalars={sym(name): draw(small_ints) for name in NAMES})


# -- reference recursions the cached structural queries are pinned against ---


def ref_free(node, bound=frozenset()):
    if isinstance(node, Const) or isinstance(node, (F.TrueF, F.FalseF)):
        return frozenset()
    if isinstance(node, SymTerm):
        return frozenset() if node.symbol in bound else frozenset({node.symbol})
    if isinstance(node, (Exists, Forall)):
        return ref_free(node.body, bound | {node.symbol})
    result = frozenset()
    for child in node_children(node):
        result |= ref_free(child, bound)
    return result


def ref_size(node):
    return 1 + sum(ref_size(child) for child in node_children(node))
