"""Tests for program states, observations and outcome configurations."""

import pytest

from repro.semantics.state import (
    BAD_ASSUME,
    ErrorKind,
    Observation,
    State,
    Terminated,
    WRONG,
    bad_assume,
    is_bad_assume,
    is_error,
    is_wrong,
    wrong,
)


class TestState:
    def test_scalar_read_write(self):
        state = State.of({"x": 1})
        updated = state.set_scalar("x", 2).set_scalar("y", 3)
        assert state.scalar("x") == 1
        assert updated.scalar("x") == 2
        assert updated.scalar("y") == 3

    def test_missing_scalar_raises(self):
        with pytest.raises(KeyError):
            State.of({}).scalar("x")

    def test_array_read_write(self):
        state = State.of({}, arrays={"A": {0: 5}})
        updated = state.set_array_element("A", 1, 7)
        assert updated.array_element("A", 0) == 5
        assert updated.array_element("A", 1) == 7
        assert state.array("A") == {0: 5}

    def test_array_element_on_new_array(self):
        state = State.of({}).set_array_element("B", 0, 1)
        assert state.array_element("B", 0) == 1

    def test_missing_array_element_raises(self):
        with pytest.raises(KeyError):
            State.of({}, arrays={"A": {0: 5}}).array_element("A", 9)

    def test_equality_is_structural(self):
        assert State.of({"x": 1, "y": 2}) == State.of({"y": 2, "x": 1})
        assert State.of({"x": 1}) != State.of({"x": 2})

    def test_states_are_hashable(self):
        assert len({State.of({"x": 1}), State.of({"x": 1})}) == 1

    def test_set_scalars_bulk(self):
        state = State.of({"x": 1}).set_scalars({"x": 5, "y": 6})
        assert state.scalar_map() == {"x": 5, "y": 6}

    def test_variable_listings(self):
        state = State.of({"x": 1}, arrays={"A": {0: 0}})
        assert state.variables() == ("x",)
        assert state.array_names() == ("A",)

    def test_str_contains_values(self):
        text = str(State.of({"x": 3}, arrays={"A": {0: 1}}))
        assert "x=3" in text and "A=" in text


class TestOutcomes:
    def test_error_predicates(self):
        assert is_error(WRONG) and is_wrong(WRONG) and not is_bad_assume(WRONG)
        assert is_error(BAD_ASSUME) and is_bad_assume(BAD_ASSUME)
        assert not is_error(Terminated(State.of({})))

    def test_error_constructors_carry_messages(self):
        assert wrong("boom").message == "boom"
        assert bad_assume("nope").kind is ErrorKind.BAD_ASSUME

    def test_str_of_outcomes(self):
        assert "wr" in str(wrong("x"))
        assert "ba" in str(BAD_ASSUME)
        assert "observations" in str(Terminated(State.of({}), (Observation("l", State.of({})),)))
