"""Tests for Cooper's quantifier elimination."""

import itertools

import pytest

from repro.logic import formula as F
from repro.logic.evaluate import Valuation, evaluate
from repro.logic.formula import Const, Divides, conj, disj, exists, forall, free_symbols, sym, var
from repro.solver.cooper import (
    QuantifierEliminationError,
    decide_closed,
    eliminate_quantifiers,
)


def assert_qe_equivalent(formula, names, radius=4):
    """Eliminated formula must agree with the original on a box of valuations."""
    eliminated = eliminate_quantifiers(formula)
    domain = range(-radius - 6, radius + 7)
    for values in itertools.product(range(-radius, radius + 1), repeat=len(names)):
        valuation = Valuation(scalars={sym(name): value for name, value in zip(names, values)})
        assert evaluate(formula, valuation, domain) == evaluate(
            eliminated, valuation, domain
        ), f"QE changed the meaning at {dict(zip(names, values))}"


class TestDecideClosed:
    def test_every_integer_has_a_successor(self):
        assert decide_closed(forall(sym("x"), exists(sym("y"), F.gt(var("y"), var("x")))))

    def test_no_integer_between_zero_and_one(self):
        formula = exists(sym("x"), conj(F.gt(var("x"), Const(0)), F.lt(var("x"), Const(1))))
        assert not decide_closed(formula)

    def test_parity_dichotomy(self):
        formula = forall(
            sym("x"), disj(Divides(2, var("x")), Divides(2, var("x") + Const(1)))
        )
        assert decide_closed(formula)

    def test_multiples_of_four_are_even(self):
        formula = forall(
            sym("x"), F.implies(Divides(4, var("x")), Divides(2, var("x")))
        )
        assert decide_closed(formula)

    def test_even_not_always_multiple_of_four(self):
        formula = forall(
            sym("x"), F.implies(Divides(2, var("x")), Divides(4, var("x")))
        )
        assert not decide_closed(formula)

    def test_linear_diophantine_solvable(self):
        # exists x, y. 3x + 5y == 1 (gcd(3, 5) = 1)
        formula = exists(
            [sym("x"), sym("y")],
            F.eq(var("x") * Const(3) + var("y") * Const(5), Const(1)),
        )
        assert decide_closed(formula)

    def test_linear_diophantine_unsolvable(self):
        # exists x, y. 2x + 4y == 1 has no integer solutions.
        formula = exists(
            [sym("x"), sym("y")],
            F.eq(var("x") * Const(2) + var("y") * Const(4), Const(1)),
        )
        assert not decide_closed(formula)

    def test_not_closed_raises(self):
        with pytest.raises(QuantifierEliminationError):
            decide_closed(F.lt(var("free"), Const(0)))


class TestEliminationEquivalence:
    def test_exists_upper_bound(self):
        formula = exists(sym("x"), conj(F.lt(var("x"), var("y")), F.gt(var("x"), var("z"))))
        assert_qe_equivalent(formula, ["y", "z"])

    def test_exists_with_coefficients(self):
        formula = exists(sym("x"), F.eq(var("x") * Const(3), var("y")))
        assert_qe_equivalent(formula, ["y"], radius=6)

    def test_exists_with_divisibility(self):
        formula = exists(
            sym("x"), conj(Divides(2, var("x")), F.eq(var("x"), var("y")))
        )
        assert_qe_equivalent(formula, ["y"], radius=5)

    def test_forall_bound(self):
        formula = forall(sym("x"), F.implies(F.ge(var("x"), var("y")), F.ge(var("x"), var("z"))))
        assert_qe_equivalent(formula, ["y", "z"])

    def test_eliminated_formula_is_quantifier_free(self):
        formula = exists(sym("x"), F.lt(var("x") * Const(2), var("y")))
        eliminated = eliminate_quantifiers(formula)
        assert "exists" not in str(eliminated)
        assert free_symbols(eliminated) <= {sym("y")}

    def test_equality_and_disequality_atoms(self):
        formula = exists(sym("x"), conj(F.ne(var("x"), var("y")), F.eq(var("x"), var("z"))))
        assert_qe_equivalent(formula, ["y", "z"])

    def test_nested_quantifiers(self):
        formula = exists(
            sym("x"),
            forall(sym("k"), F.implies(F.ge(var("k"), var("x")), F.ge(var("k"), var("y")))),
        )
        assert_qe_equivalent(formula, ["y"], radius=3)
