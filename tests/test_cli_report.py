"""Tests for the shared CLI report schema (repro.cli_report).

One schema backs the ``--json`` output of ``verify-batch``,
``verify-case-study`` and ``explore``: an envelope (``command``,
``schema_version``, ``verified``) around the command-specific report, with
engine/cache counters injected uniformly.  The integration tests drive the
real CLI to pin the envelope on actual command output.
"""

import json

import pytest

from repro.cli import main
from repro.cli_report import (
    ENVELOPE_KEYS,
    SCHEMA_VERSION,
    emit_json,
    emit_text,
    report_payload,
    validate_payload,
)
from repro.solver.backend import RESOLVED_BACKENDS, active_backend


class TestReportPayload:
    def test_envelope_keys_are_added(self):
        payload = report_payload("verify-batch", {"programs": []}, verified=True)
        for key in ENVELOPE_KEYS:
            assert key in payload
        assert payload["command"] == "verify-batch"
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["verified"] is True
        assert payload["programs"] == []

    def test_core_keys_are_preserved_and_envelope_wins(self):
        core = {"results": [1, 2], "command": "spoofed"}
        payload = report_payload("explore", core, verified=False)
        assert payload["results"] == [1, 2]
        assert payload["command"] == "explore"  # envelope overwrites
        assert payload["verified"] is False

    def test_engine_counters_are_injected(self):
        class FakeCache:
            def stats(self):
                return {"hits": 3, "misses": 1, "hit_rate": 0.75}

        class FakeStats:
            def as_dict(self):
                return {"obligations": 4}

        class FakeSolverStats:
            def as_dict(self):
                return {
                    "cube_count": 5,
                    "cooper_eliminations": 1,
                    "bounded_fallbacks": 0,
                    "unknown_results": 0,
                    "total_seconds": 0.25,
                    "vector_rows": 0,
                    "vector_batches": 0,
                    "vector_searches": 0,
                    "vector_fallbacks": 0,
                    "prefiltered_cubes": 0,
                }

        class FakeEngine:
            cache = FakeCache()
            statistics = FakeStats()
            solver_statistics = FakeSolverStats()

        payload = report_payload("verify-case-study", {}, verified=True, engine=FakeEngine())
        assert payload["engine"] == {"obligations": 4}
        assert payload["cache"]["hit_rate"] == 0.75
        assert payload["solver"]["cube_count"] == 5
        # the envelope stamps the resolved backend onto the solver section
        assert payload["solver"]["backend"] in RESOLVED_BACKENDS
        assert validate_payload(payload) is None

    def test_existing_counters_are_not_overwritten(self):
        class FakeEngine:
            cache = None

            class statistics:  # noqa: N801 - attribute-style stub
                @staticmethod
                def as_dict():
                    return {"obligations": 99}

            class solver_statistics:  # noqa: N801 - attribute-style stub
                @staticmethod
                def as_dict():
                    return {"cube_count": 99}

        payload = report_payload(
            "verify-batch",
            {"engine": {"obligations": 7}, "solver": {"cube_count": 7}},
            verified=True,
            engine=FakeEngine(),
        )
        assert payload["engine"] == {"obligations": 7}
        # Caller-supplied counters win, but the resolved backend is always
        # stamped so every schema-4 report is self-describing.
        assert payload["solver"] == {"cube_count": 7, "backend": active_backend()}

    def test_validate_rejects_incomplete_solver_counters(self):
        payload = report_payload("verify-batch", {"solver": {"cube_count": 1}}, verified=True)
        assert "solver counters" in (validate_payload(payload) or "")

    def test_validate_requires_vector_counters(self):
        solver = {
            "cube_count": 1,
            "cooper_eliminations": 0,
            "bounded_fallbacks": 0,
            "unknown_results": 0,
            "total_seconds": 0.0,
        }
        payload = report_payload("verify-batch", {"solver": dict(solver)}, verified=True)
        assert "vector-backend counters" in (validate_payload(payload) or "")
        solver.update(
            vector_rows=0,
            vector_batches=0,
            vector_searches=0,
            vector_fallbacks=0,
            prefiltered_cubes=0,
        )
        payload = report_payload("verify-batch", {"solver": dict(solver)}, verified=True)
        assert validate_payload(payload) is None

    def test_validate_rejects_unknown_backend(self):
        solver = {
            "cube_count": 0,
            "cooper_eliminations": 0,
            "bounded_fallbacks": 0,
            "unknown_results": 0,
            "total_seconds": 0.0,
            "vector_rows": 0,
            "vector_batches": 0,
            "vector_searches": 0,
            "vector_fallbacks": 0,
            "prefiltered_cubes": 0,
            "backend": "quantum",
        }
        payload = report_payload("verify-batch", {"solver": solver}, verified=True)
        assert "solver.backend" in (validate_payload(payload) or "")
        solver["backend"] = RESOLVED_BACKENDS[0]
        payload = report_payload("verify-batch", {"solver": solver}, verified=True)
        assert validate_payload(payload) is None

    def test_validate_incremental_section(self):
        incremental = {
            "reused": 290.0,
            "delta_obligations": 117.0,
            "total_obligations": 407.0,
            "reuse_rate": 0.71,
            "store_entries": 88.0,
        }
        payload = report_payload(
            "explore", {"incremental": dict(incremental)}, verified=True
        )
        assert validate_payload(payload) is None
        # missing counters are rejected with a pointer at what is absent
        broken = dict(incremental)
        del broken["reuse_rate"]
        payload = report_payload("explore", {"incremental": broken}, verified=True)
        assert "reuse_rate" in (validate_payload(payload) or "")
        # non-numeric counters are rejected
        wrong = dict(incremental, reused="lots")
        payload = report_payload("explore", {"incremental": wrong}, verified=True)
        assert "incremental.reused" in (validate_payload(payload) or "")
        payload = report_payload("explore", {"incremental": [1]}, verified=True)
        assert "incremental section" in (validate_payload(payload) or "")

    def test_validate_rejects_missing_envelope(self):
        assert validate_payload({"verified": True}) is not None
        assert validate_payload(
            {"command": "x", "schema_version": SCHEMA_VERSION, "verified": "yes"}
        ) is not None
        assert validate_payload(
            {"command": "x", "schema_version": SCHEMA_VERSION, "verified": True,
             "cache": {"hits": 1}}
        ) is not None


class TestEmission:
    def test_emit_json_to_file_is_deterministic(self, tmp_path):
        path = tmp_path / "report.json"
        emit_json({"b": 1, "a": 2}, str(path))
        text = path.read_text()
        assert text.index('"a"') < text.index('"b"')
        assert json.loads(text) == {"a": 2, "b": 1}

    def test_emit_json_to_stdout(self, capsys):
        emit_json({"k": True}, "-")
        assert json.loads(capsys.readouterr().out) == {"k": True}

    def test_emit_text(self, tmp_path, capsys):
        path = tmp_path / "table.csv"
        emit_text("a,b\n1,2\n", str(path))
        assert path.read_text() == "a,b\n1,2\n"
        emit_text("x\n", "-")
        assert capsys.readouterr().out == "x\n"


class TestCliIntegration:
    def test_verify_batch_json_carries_envelope(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        exit_code = main(
            ["verify-batch", "lu-approximate-memory", "--json", str(report_path)]
        )
        capsys.readouterr()
        assert exit_code == 0
        payload = json.loads(report_path.read_text())
        assert validate_payload(payload) is None
        assert payload["command"] == "verify-batch"
        assert payload["verified"] is True
        # legacy keys survive the envelope
        assert payload["programs"][0]["name"] == "lu-approximate-memory"

    def test_verify_case_study_json_carries_envelope(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        exit_code = main(["verify-case-study", "lu", "--json", str(report_path)])
        capsys.readouterr()
        assert exit_code == 0
        payload = json.loads(report_path.read_text())
        assert validate_payload(payload) is None
        assert payload["command"] == "verify-case-study"
        assert {"hits", "misses", "hit_rate"} <= set(payload["cache"])
        assert payload["layers"]["relaxed"]["unknown"] == 0
