"""Tests for substitution, injections, projections and translation."""

import pytest

from repro.lang import builder as b
from repro.logic import formula as F
from repro.logic.evaluate import Valuation, evaluate
from repro.logic.formula import (
    Const,
    Exists,
    Select,
    Store,
    Symbol,
    SymTerm,
    Tag,
    conj,
    exists,
    free_symbols,
    sym,
    sym_o,
    sym_r,
    var,
)
from repro.logic.inject import (
    inj_o,
    inj_r,
    pair,
    projection_entails,
    projection_formula,
    relational_frame,
    strip_o,
)
from repro.logic.subst import rename_arrays, rename_symbols, substitute, substitute_term
from repro.logic.translate import (
    formula_of_bool,
    formula_of_rel_bool,
    term_of_expr,
    term_of_rel_expr,
)
from repro.solver.interface import Solver


class TestSubstitution:
    def test_simple_substitution(self):
        formula = F.lt(var("x"), var("y"))
        result = substitute(formula, {sym("x"): Const(5)})
        assert str(result) == "(5 < y)"

    def test_substitution_leaves_other_symbols(self):
        formula = F.eq(var("x") + var("y"), Const(0))
        result = substitute(formula, {sym("z"): Const(1)})
        assert result == formula

    def test_substitution_under_quantifier_ignores_bound(self):
        formula = exists(sym("x"), F.lt(var("x"), var("y")))
        result = substitute(formula, {sym("x"): Const(5)})
        assert result == formula

    def test_capture_avoiding_substitution(self):
        # [y := x] in (exists x . x < y) must rename the bound x.
        formula = exists(sym("x"), F.lt(var("x"), var("y")))
        result = substitute(formula, {sym("y"): SymTerm(sym("x"))})
        assert isinstance(result, Exists)
        assert result.symbol != sym("x")
        assert sym("x") in free_symbols(result)

    def test_substitute_term_into_select_index(self):
        term = Select(Symbol("A"), var("i"))
        result = substitute_term(term, {sym("i"): Const(3)})
        assert str(result) == "A[3]"

    def test_array_substitution_expands_store(self):
        # Q[store(A, i, v)/A] turns A[j] into ite(i == j, v, A[j]).
        formula = F.eq(Select(Symbol("A"), var("j")), Const(0))
        result = substitute(
            formula, {}, arrays={Symbol("A"): Store(Symbol("A"), var("i"), Const(7))}
        )
        assert "ite" in str(result)

    def test_rename_symbols(self):
        formula = F.lt(var("x"), Const(0))
        renamed = rename_symbols(formula, {sym("x"): sym_o("x")})
        assert free_symbols(renamed) == {sym_o("x")}

    def test_rename_arrays(self):
        formula = F.eq(Select(Symbol("A", Tag.RELAXED), var("i")), Const(0))
        renamed = rename_arrays(formula, {Symbol("A", Tag.RELAXED): Symbol("A")})
        assert "A[" in str(renamed) and "<r>[" not in str(renamed)


class TestInjections:
    def test_inj_o_tags_symbols(self):
        formula = F.lt(var("x"), var("y"))
        assert free_symbols(inj_o(formula)) == {sym_o("x"), sym_o("y")}

    def test_inj_r_tags_symbols(self):
        formula = F.lt(var("x"), var("y"))
        assert free_symbols(inj_r(formula)) == {sym_r("x"), sym_r("y")}

    def test_strip_o_inverts_inj_o(self):
        formula = F.lt(var("x"), Const(1))
        assert strip_o(inj_o(formula)) == formula

    def test_pair_combines_both_sides(self):
        combined = pair(F.lt(var("x"), 0), F.gt(var("x"), 0))
        symbols = free_symbols(combined)
        assert sym_o("x") in symbols and sym_r("x") in symbols

    def test_relational_frame(self):
        frame = relational_frame(["x", "y"])
        symbols = free_symbols(frame)
        assert {sym_o("x"), sym_r("x"), sym_o("y"), sym_r("y")} == symbols

    def test_projection_formula_strips_tags(self):
        relation = conj(F.eq(SymTerm(sym_o("x")), SymTerm(sym_r("x"))),
                        F.ge(SymTerm(sym_o("x")), Const(0)))
        projected = projection_formula(relation, Tag.ORIGINAL)
        assert sym("x") in free_symbols(projected)
        assert sym_o("x") not in free_symbols(projected)

    def test_projection_entails_is_checked_by_solver(self):
        relation = conj(
            F.eq(SymTerm(sym_o("x")), SymTerm(sym_r("x"))),
            F.ge(SymTerm(sym_o("x")), Const(0)),
        )
        obligation = projection_entails(relation, F.ge(var("x"), Const(0)), Tag.RELAXED)
        assert Solver().check_valid(obligation).is_valid


class TestTranslation:
    def test_term_of_expr_plain(self):
        term = term_of_expr(b.add("x", 3))
        assert free_symbols(F.eq(term, Const(0))) == {sym("x")}

    def test_term_of_expr_tagged(self):
        term = term_of_expr(b.add("x", 3), Tag.ORIGINAL)
        assert free_symbols(F.eq(term, Const(0))) == {sym_o("x")}

    def test_formula_of_bool_matches_evaluation(self):
        condition = b.and_(b.lt("x", 5), b.or_(b.eq("y", 0), b.gt("y", 2)))
        formula = formula_of_bool(condition)
        valuation = Valuation(scalars={sym("x"): 3, sym("y"): 4})
        assert evaluate(formula, valuation) is True

    def test_formula_of_bool_array_read(self):
        condition = b.lt(b.aread("A", "i"), "cut")
        formula = formula_of_bool(condition, Tag.RELAXED)
        assert Symbol("A", Tag.RELAXED) in F.formula_arrays(formula)

    def test_formula_of_rel_bool(self):
        condition = b.within("x", 2)
        formula = formula_of_rel_bool(condition)
        assert {sym_o("x"), sym_r("x")} <= free_symbols(formula)

    def test_term_of_rel_expr_array(self):
        term = term_of_rel_expr(b.oread("A", b.o("i")))
        assert "A<o>" in str(term)

    def test_min_max_translation(self):
        formula = formula_of_bool(b.eq(b.max_("x", "y"), "x"))
        assert "max" in str(formula)
