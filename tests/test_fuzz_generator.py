"""Hypothesis properties over the fuzz synthesizer itself.

The synthesizer's contract (stated in ``repro.fuzz.generator``):

* generation is a pure function of ``(seed, index)``,
* every program is statically well-formed and pretty/parse round-trips,
* every *planted* site is discovered by ``relaxations.sites`` and applies
  to a program that is itself well-formed and round-trips,
* the auto-derived acceptability spec collects obligations error-free on
  both proof layers.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from strategies import flatten_stmt

from repro.fuzz import FAMILIES, ProgramSynthesizer, derive_spec
from repro.hoare.verifier import AcceptabilityVerifier
from repro.lang.analysis import check_program
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program
from repro.relaxations.sites import apply_site, discover_sites

seeds = st.integers(min_value=0, max_value=50)
indices = st.integers(min_value=0, max_value=30)


@settings(max_examples=40, deadline=None)
@given(seeds, indices)
def test_generation_is_deterministic(seed, index):
    first = ProgramSynthesizer(seed).generate(index)
    second = ProgramSynthesizer(seed).generate(index)
    assert first.source == second.source
    assert first.program == second.program
    assert first.family == second.family
    assert first.family in FAMILIES


@settings(max_examples=40, deadline=None)
@given(seeds, indices)
def test_generated_program_is_well_formed_and_round_trips(seed, index):
    generated = ProgramSynthesizer(seed).generate(index)
    report = check_program(generated.program, strict_declarations=True)
    assert report.ok, report.errors
    reparsed = parse_program(generated.source, name=generated.name)
    assert flatten_stmt(reparsed.body) == flatten_stmt(generated.program.body)
    assert reparsed.variables == generated.program.variables
    # The pretty form is a fixpoint: corpus files never churn on rewrite.
    assert pretty_program(reparsed) == generated.source


@settings(max_examples=25, deadline=None)
@given(seeds, indices)
def test_planted_sites_are_discovered_and_apply(seed, index):
    generated = ProgramSynthesizer(seed).generate(index)
    sites = discover_sites(generated.program)
    discovered = {(site.kind, _anchor_name(site)) for site in sites}
    for planted in generated.planted:
        assert (planted.kind, planted.name) in discovered, (
            f"planted {planted} not discovered; got {sorted(discovered)}"
        )
    for site in sites:
        applied = apply_site(generated.program, site)
        assert check_program(applied.program).ok
        reparsed = parse_program(pretty_program(applied.program))
        assert flatten_stmt(reparsed.body) == flatten_stmt(applied.program.body)


def _anchor_name(site):
    """The variable a site anchors on, parsed back out of its ``site_id``
    (``perforate:i@L0:s2`` / ``restrict:x@R0:d1`` / ``knob:n:f1``)."""
    head = site.site_id.split(":")[1]
    return head.split("@")[0]


@settings(max_examples=20, deadline=None)
@given(seeds, indices)
def test_derived_spec_collects_obligations_error_free(seed, index):
    generated = ProgramSynthesizer(seed).generate(index)
    spec = derive_spec(generated.program)
    collected = AcceptabilityVerifier().collect(generated.program, spec)
    assert not collected.original.errors, collected.original.errors
    assert not collected.relaxed.errors, collected.relaxed.errors
    assert collected.original.obligations
    assert collected.relaxed.obligations
