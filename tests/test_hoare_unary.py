"""Tests for the unary proof systems ⊢o (Figure 7) and ⊢i (Figure 9)."""

import pytest

from repro.lang import builder as b
from repro.lang.parser import parse_statement
from repro.hoare.obligations import ObligationKind, ProofSystem
from repro.hoare.unary import (
    MissingInvariantError,
    UnarySystem,
    prove_intermediate,
    prove_original,
    prove_unary,
)


class TestOriginalSemantics:
    def test_assignment_triple(self):
        report = prove_original(b.assign("x", b.add("x", 1)), b.ge("x", 0), b.ge("x", 1))
        assert report.verified

    def test_invalid_triple_rejected(self):
        report = prove_original(b.assign("x", b.add("x", 1)), b.ge("x", 0), b.ge("x", 5))
        assert not report.verified

    def test_assert_requires_proof(self):
        report = prove_original(b.assert_(b.gt("x", 0)), b.ge("x", 0), b.true)
        assert not report.verified
        report = prove_original(b.assert_(b.gt("x", 0)), b.ge("x", 1), b.true)
        assert report.verified

    def test_assume_is_free_in_original_semantics(self):
        # Figure 7: assume adds the condition without generating an obligation.
        report = prove_original(
            b.block(b.assume(b.gt("x", 0)), b.assert_(b.ge("x", 1))), b.true, b.true
        )
        assert report.verified

    def test_relax_behaves_as_assert_in_original_semantics(self):
        program = b.relax("x", b.eq("x", 5))
        assert not prove_original(program, b.true, b.true).verified
        assert prove_original(program, b.eq("x", 5), b.true).verified

    def test_havoc_postcondition(self):
        program = b.havoc("x", b.and_(b.ge("x", 0), b.le("x", "n")))
        report = prove_original(program, b.ge("n", 0), b.ge("x", 0))
        assert report.verified

    def test_havoc_progress_condition(self):
        # havoc (x) st (x < n && x > n) is unsatisfiable: the triple must fail
        # because execution would go wrong.
        program = b.havoc("x", b.and_(b.lt("x", "n"), b.gt("x", "n")))
        assert not prove_original(program, b.true, b.true).verified

    def test_if_rule(self):
        program = b.if_(b.lt("x", 0), b.assign("y", b.sub(0, "x")), b.assign("y", "x"))
        report = prove_original(program, b.true, b.ge("y", 0))
        assert report.verified

    def test_while_rule_with_invariant(self):
        program = parse_statement(
            "i = 0; s = 0; "
            "while (i < n) invariant (s >= 0 && 0 <= i && i <= n) { s = s + i; i = i + 1; }"
        )
        report = prove_original(program, b.ge("n", 0), b.ge("s", 0))
        assert report.verified

    def test_while_missing_invariant_errors(self):
        program = parse_statement("while (i < n) { i = i + 1; }")
        report = prove_original(program, b.true, b.true)
        assert not report.verified
        assert report.errors

    def test_wrong_invariant_not_preserved(self):
        program = parse_statement(
            "i = 0; while (i < n) invariant (i == 0) { i = i + 1; }"
        )
        report = prove_original(program, b.true, b.true)
        assert not report.verified
        failing_rules = {result.obligation.rule for result in report.undischarged()}
        assert "while-preserve" in failing_rules

    def test_array_assignment_wp(self):
        program = b.block(b.astore("A", "i", 7), b.assert_(b.eq(b.aread("A", "i"), 7)))
        report = prove_original(program, b.true, b.true)
        assert report.verified

    def test_array_assignment_distinct_index(self):
        program = b.block(
            b.astore("A", "i", 7),
            b.assert_(b.eq(b.aread("A", "j"), 5)),
        )
        report = prove_original(
            program, b.and_(b.eq(b.aread("A", "j"), 5), b.ne("i", "j")), b.true
        )
        assert report.verified

    def test_relate_is_noop_for_unary_proof(self):
        program = b.block(b.relate("l", b.same("x")), b.assert_(b.ge("x", 0)))
        report = prove_original(program, b.ge("x", 0), b.true)
        assert report.verified

    def test_rule_applications_recorded(self):
        program = b.block(b.assign("x", 1), b.assign("y", 2), b.skip)
        report = prove_original(program, b.true, b.true)
        assert report.rule_applications.get("assign") == 2
        assert report.rule_applications.get("skip") == 1
        assert report.system is ProofSystem.ORIGINAL


class TestIntermediateSemantics:
    def test_assume_must_be_proved(self):
        # Figure 9: the intermediate semantics treats assume like assert.
        program = b.assume(b.gt("x", 0))
        assert not prove_intermediate(program, b.true, b.true).verified
        assert prove_intermediate(program, b.gt("x", 0), b.true).verified

    def test_relax_behaves_as_havoc(self):
        program = b.block(
            b.relax("x", b.and_(b.ge("x", 0), b.le("x", 3))),
            b.assert_(b.le("x", 3)),
        )
        assert prove_intermediate(program, b.true, b.le("x", 3)).verified
        # ... and the postcondition may not assume the original value survived.
        program_bad = b.block(
            b.relax("x", b.and_(b.ge("x", 0), b.le("x", 3))),
            b.assert_(b.eq("x", 0)),
        )
        assert not prove_intermediate(program_bad, b.eq("x", 0), b.true).verified

    def test_array_relax_forgets_contents(self):
        program = b.block(
            b.relax("RS", b.true),
            b.assert_(b.eq(b.aread("RS", 0), 1)),
        )
        report = prove_intermediate(program, b.eq(b.aread("RS", 0), 1), b.true)
        assert not report.verified

    def test_system_marker(self):
        report = prove_unary(b.skip, b.true, b.true, system=UnarySystem.INTERMEDIATE)
        assert report.system is ProofSystem.INTERMEDIATE


class TestObligationMetadata:
    def test_obligation_kinds_are_validity(self):
        program = parse_statement(
            "i = 0; while (i < n) invariant (i <= n) { i = i + 1; } assert i >= n;"
        )
        report = prove_original(program, b.ge("n", 0), b.true)
        assert report.verified
        assert all(o.kind is ObligationKind.VALIDITY for o in report.obligations)

    def test_summary_mentions_verdict(self):
        report = prove_original(b.skip, b.true, b.true)
        assert "VERIFIED" in report.summary()
        report_bad = prove_original(b.assert_(b.false), b.true, b.true)
        assert "UNDISCHARGED" in report_bad.summary() or "NOT VERIFIED" in report_bad.summary()
