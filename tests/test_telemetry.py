"""Tests for the telemetry layer (repro.telemetry).

Covers the span-correctness invariants the instrumentation relies on:
nesting/parenting follows the open-span stack, closure is exception-safe,
the disabled path returns the shared no-op singleton (no allocation), and
worker-process sessions re-parent cleanly after a pickle round trip.  The
sink tests pin the Chrome ``trace_event`` and JSONL formats and check
``summarize_trace`` reads back exactly what the session recorded.
"""

import json
import os
import pickle

import pytest

from repro import telemetry
from repro.telemetry import (
    NOOP_SPAN,
    Histogram,
    SpanRecord,
    TelemetrySession,
    TraceFormatError,
    chrome_trace_payload,
    span_aggregates,
    summarize_trace,
    telemetry_section,
    write_chrome_trace,
    write_jsonl,
)


@pytest.fixture(autouse=True)
def _no_ambient_session():
    """Tests must not leak an installed session into each other."""
    telemetry.uninstall()
    yield
    telemetry.uninstall()


def _record_by_name(session):
    records = {}
    for record in session.records:
        assert record.name not in records, f"duplicate span name {record.name}"
        records[record.name] = record
    return records


class TestSpanNesting:
    def test_parent_is_the_enclosing_open_span(self):
        session = telemetry.install(TelemetrySession())
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
            with telemetry.span("sibling"):
                pass
        records = _record_by_name(session)
        assert records["outer"].parent_id is None
        assert records["inner"].parent_id == records["outer"].span_id
        assert records["sibling"].parent_id == records["outer"].span_id
        # children close (and therefore record) before their parent
        assert [r.name for r in session.records] == ["inner", "sibling", "outer"]

    def test_span_ids_are_unique_and_stack_unwinds(self):
        session = telemetry.install(TelemetrySession())
        with telemetry.span("a"):
            with telemetry.span("b"):
                assert session.current_span_id() is not None
        assert session.current_span_id() is None
        ids = [record.span_id for record in session.records]
        assert len(set(ids)) == len(ids)

    def test_timing_is_contained_and_ordered(self):
        session = telemetry.install(TelemetrySession())
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
        records = _record_by_name(session)
        inner, outer = records["inner"], records["outer"]
        assert inner.start <= inner.end
        assert outer.start <= inner.start
        assert inner.end <= outer.end

    def test_attributes_at_creation_and_set_attribute(self):
        session = telemetry.install(TelemetrySession())
        with telemetry.span("discharge", index=7, kind="validity") as span:
            span.set_attribute("status", "valid")
        [record] = session.records
        assert record.attributes == {
            "index": 7,
            "kind": "validity",
            "status": "valid",
        }

    def test_exception_safe_closure(self):
        session = telemetry.install(TelemetrySession())
        with pytest.raises(RuntimeError, match="boom"):
            with telemetry.span("outer"):
                with telemetry.span("failing", step=1):
                    raise RuntimeError("boom")
        records = _record_by_name(session)
        # both spans recorded, the raising one marked, the stack unwound
        assert records["failing"].attributes["error"] == "RuntimeError: boom"
        assert records["failing"].parent_id == records["outer"].span_id
        assert session.current_span_id() is None

    def test_roots_and_span_children(self):
        session = telemetry.install(TelemetrySession())
        with telemetry.span("root"):
            with telemetry.span("child"):
                pass
        assert [record.name for record in session.roots()] == ["root"]
        children = session.span_children()
        root_id = _record_by_name(session)["root"].span_id
        assert [record.name for record in children[root_id]] == ["child"]


class TestDisabledPath:
    def test_span_returns_the_shared_noop_singleton(self):
        assert not telemetry.enabled()
        assert telemetry.span("anything") is NOOP_SPAN
        assert telemetry.span("other", index=3) is NOOP_SPAN

    def test_noop_span_is_a_working_context_manager(self):
        with telemetry.span("x") as span:
            span.set_attribute("k", "v")  # silently dropped
        with pytest.raises(ValueError):
            with telemetry.span("y"):
                raise ValueError("propagates")

    def test_metrics_are_dropped_without_a_session(self):
        telemetry.count("c")
        telemetry.gauge("g", 1.0)
        telemetry.observe("h", 2.0)
        assert telemetry.active_session() is None

    def test_activated_restores_the_previous_session(self):
        outer = telemetry.install(TelemetrySession())
        with telemetry.activated(TelemetrySession()) as inner:
            assert telemetry.active_session() is inner
        assert telemetry.active_session() is outer


class TestMetrics:
    def test_counters_accumulate_gauges_overwrite(self):
        session = telemetry.install(TelemetrySession())
        telemetry.count("hits")
        telemetry.count("hits", 2)
        telemetry.gauge("depth", 3)
        telemetry.gauge("depth", 5)
        assert session.counters["hits"] == 3.0
        assert session.gauges["depth"] == 5.0

    def test_histograms_summarise_the_stream(self):
        session = telemetry.install(TelemetrySession())
        for value in (4.0, 1.0, 7.0):
            telemetry.observe("cubes", value)
        summary = session.histograms["cubes"].as_dict()
        assert summary["count"] == 3.0
        assert summary["sum"] == 12.0
        assert summary["min"] == 1.0
        assert summary["max"] == 7.0
        assert summary["mean"] == 4.0

    def test_histogram_merge(self):
        left, right = Histogram(), Histogram()
        left.observe(2.0)
        right.observe(10.0)
        right.observe(4.0)
        left.merge(right.as_dict())
        assert left.as_dict() == {
            "count": 3.0,
            "sum": 16.0,
            "min": 2.0,
            "max": 10.0,
            "mean": 16.0 / 3.0,
        }


class TestWorkerMerge:
    def _worker_payload(self):
        worker = TelemetrySession()
        with telemetry.activated(worker):
            with telemetry.span("discharge", index=3):
                with telemetry.span("strategy", name="full"):
                    pass
            telemetry.count("lia.cube_solves", 5)
            telemetry.observe("solver.cubes_per_query", 5)
        # The payload crosses the process-pool boundary pickled.
        return pickle.loads(pickle.dumps(worker.export()))

    def test_merge_remaps_ids_and_reparents_roots(self):
        payload = self._worker_payload()
        parent = telemetry.install(TelemetrySession())
        with telemetry.span("dispatch"):
            telemetry.merge_exported(payload)
        records = _record_by_name(parent)
        assert records["discharge"].parent_id == records["dispatch"].span_id
        assert records["strategy"].parent_id == records["discharge"].span_id
        ids = [record.span_id for record in parent.records]
        assert len(set(ids)) == len(ids)
        assert [record.name for record in parent.roots()] == ["dispatch"]

    def test_merge_accumulates_metrics(self):
        parent = telemetry.install(TelemetrySession())
        telemetry.count("lia.cube_solves", 2)
        telemetry.merge_exported(self._worker_payload())
        telemetry.merge_exported(self._worker_payload())
        assert parent.counters["lia.cube_solves"] == 12.0
        assert parent.histograms["solver.cubes_per_query"].count == 2

    def test_span_record_round_trips_through_dict(self):
        record = SpanRecord(
            name="s", span_id=4, parent_id=None, start=1.5, end=2.0,
            pid=123, attributes={"k": "v"},
        )
        assert SpanRecord.from_dict(record.as_dict()) == record


class TestSinks:
    def _session(self):
        session = telemetry.install(TelemetrySession())
        with telemetry.span("batch", programs=2):
            with telemetry.span("discharge", index=0):
                pass
        telemetry.count("engine.cache.hits.memory", 3)
        telemetry.count("engine.cache.misses", 1)
        telemetry.gauge("jobs", 2)
        telemetry.observe("solver.cubes_per_query", 4)
        telemetry.uninstall()
        return session

    def test_telemetry_section_shape(self):
        section = telemetry_section(self._session())
        assert section["enabled"] is True
        assert section["span_count"] == 2
        assert section["spans"]["batch"]["count"] == 1
        assert section["spans"]["discharge"]["total_seconds"] >= 0.0
        assert section["counters"]["engine.cache.hits.memory"] == 3.0
        assert section["gauges"]["jobs"] == 2.0
        assert section["histograms"]["solver.cubes_per_query"]["count"] == 1.0

    def test_span_aggregates(self):
        session = self._session()
        aggregates = span_aggregates(session.records)
        assert set(aggregates) == {"batch", "discharge"}
        batch = aggregates["batch"]
        assert batch["count"] == 1
        assert batch["max_seconds"] == pytest.approx(batch["total_seconds"])

    def test_chrome_trace_payload_is_valid(self):
        session = self._session()
        payload = chrome_trace_payload(session)
        events = payload["traceEvents"]
        complete = [event for event in events if event["ph"] == "X"]
        metadata = [event for event in events if event["ph"] == "M"]
        assert len(complete) == 2
        assert metadata and metadata[0]["name"] == "process_name"
        # timestamps are µs, rebased to the earliest span
        assert min(event["ts"] for event in complete) == 0
        for event in complete:
            assert event["dur"] >= 0
            assert "span_id" in event["args"]
        names = {event["name"] for event in complete}
        assert names == {"batch", "discharge"}
        other = payload["otherData"]
        assert other["counters"]["engine.cache.misses"] == 1.0
        assert "format_version" in other

    def test_write_chrome_trace_and_jsonl(self, tmp_path):
        session = self._session()
        chrome_path = tmp_path / "trace.json"
        write_chrome_trace(session, str(chrome_path))
        payload = json.loads(chrome_path.read_text())
        assert "traceEvents" in payload

        jsonl_path = tmp_path / "trace.jsonl"
        write_jsonl(session, str(jsonl_path))
        lines = [json.loads(line) for line in jsonl_path.read_text().splitlines()]
        kinds = [line["type"] for line in lines]
        assert kinds.count("span") == 2
        assert "counter" in kinds and "gauge" in kinds and "histogram" in kinds

        # the .jsonl suffix dispatches the chrome writer to the JSONL sink
        suffixed = tmp_path / "suffixed.jsonl"
        write_chrome_trace(session, str(suffixed))
        first = json.loads(suffixed.read_text().splitlines()[0])
        assert first["type"] == "span"


class TestSummarize:
    def _session(self):
        session = telemetry.install(TelemetrySession())
        with telemetry.span("batch"):
            with telemetry.span("discharge", index=0, strategy="full"):
                pass
        telemetry.count("engine.cache.hits.memory", 3)
        telemetry.count("engine.cache.misses", 1)
        telemetry.count("engine.dedup.hits", 2)
        telemetry.count("portfolio.wins.validity.cube-fast", 4)
        telemetry.uninstall()
        return session

    @pytest.mark.parametrize("filename", ["trace.json", "trace.jsonl"])
    def test_round_trip_both_formats(self, tmp_path, filename):
        session = self._session()
        path = tmp_path / filename
        write_chrome_trace(session, str(path))
        summary = summarize_trace(str(path), top=5)
        assert len(summary.events) == 2
        stages = {name: (count, total) for name, count, total, _ in summary.stages()}
        assert stages["batch"][0] == 1
        assert summary.slowest()[0].name == "batch"
        cache = summary.cache()
        assert cache["hits"] == 3.0
        assert cache["hits.memory"] == 3.0
        assert cache["misses"] == 1.0
        assert cache["hit_rate"] == pytest.approx(0.75)
        assert cache["dedup_hits"] == 2.0
        assert summary.strategy_wins() == {"validity": {"cube-fast": 4}}
        rendered = summary.render()
        assert "slowest" in rendered and "portfolio wins" in rendered
        assert summary.as_dict()["counters"]["engine.cache.misses"] == 1.0

    def test_rejects_unrecognised_files(self, tmp_path):
        empty = tmp_path / "empty.json"
        empty.write_text("")
        with pytest.raises(TraceFormatError):
            summarize_trace(str(empty))
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(TraceFormatError):
            summarize_trace(str(wrong))
        garbage = tmp_path / "garbage.jsonl"
        garbage.write_text("not json\nat all\n")
        with pytest.raises(TraceFormatError):
            summarize_trace(str(garbage))


class TestEngineIntegration:
    """The acceptance-criteria invariants, driven through verify_batch."""

    _STUDIES = ["sum-reduction-perforation", "bnb-early-exit"]

    def _run(self, jobs, tmp_path):
        from repro.engine import ObligationEngine, case_study_items, verify_batch

        engine = ObligationEngine.for_batch(
            jobs=jobs, cache_dir=str(tmp_path / f"cache-{jobs}")
        )
        session = telemetry.install(TelemetrySession())
        try:
            report = verify_batch(case_study_items(self._STUDIES), engine=engine)
        finally:
            telemetry.uninstall()
        assert report.all_verified
        return engine, session

    def test_single_root_tree_with_worker_reparenting(self, tmp_path):
        engine, session = self._run(2, tmp_path)
        roots = session.roots()
        assert [record.name for record in roots] == ["batch"]
        # every recorded span is reachable: parents all exist
        known = {record.span_id for record in session.records}
        for record in session.records:
            if record.parent_id is not None:
                assert record.parent_id in known
        # worker spans came home and were re-parented under the dispatch span
        by_id = {record.span_id: record for record in session.records}
        worker_records = [
            record for record in session.records if record.pid != os.getpid()
        ]
        assert worker_records, "jobs=2 must produce worker-process spans"
        for record in worker_records:
            assert record.name in ("discharge", "strategy", "solver.vector.prefilter")
            parent = by_id[record.parent_id]
            if parent.pid == os.getpid():
                assert parent.name == "dispatch"

    def test_envelope_counters_match_summarized_trace(self, tmp_path):
        engine, session = self._run(2, tmp_path)
        trace_path = tmp_path / "trace.json"
        write_chrome_trace(session, str(trace_path))
        summary = summarize_trace(str(trace_path))
        section = telemetry_section(session)
        assert summary.counters == section["counters"]
        assert len(summary.events) == section["span_count"]
        # the trace's win counters agree with the engine's own win table
        assert summary.strategy_wins() == engine.portfolio.win_table()

    def test_serial_and_jobs_runs_agree_on_counters(self, tmp_path):
        """Satellite: solver counters are identical serial vs --jobs."""
        engine_serial, _ = self._run(1, tmp_path)
        engine_jobs, _ = self._run(2, tmp_path)
        count_keys = (
            "sat_queries",
            "validity_queries",
            "cube_count",
            "cooper_eliminations",
            "bounded_fallbacks",
            "unknown_results",
        )
        serial = engine_serial.solver_statistics.as_dict()
        jobs = engine_jobs.solver_statistics.as_dict()
        for key in count_keys:
            assert serial[key] == jobs[key], key
        # both paths carry the per-strategy wall-clock breakdown
        serial_strategies = {
            key for key in serial if key.startswith("strategy_seconds.")
        }
        jobs_strategies = {key for key in jobs if key.startswith("strategy_seconds.")}
        assert serial_strategies == jobs_strategies
        assert serial_strategies, "portfolio runs must book per-strategy seconds"

    def test_engine_counters_match_report(self, tmp_path):
        engine, session = self._run(1, tmp_path)
        stats = engine.statistics
        assert session.counters.get("engine.cache.misses", 0.0) == stats.cache_misses
        wins = sum(
            value
            for key, value in session.counters.items()
            if key.startswith("portfolio.wins.")
        )
        assert wins == sum(
            sum(table.values()) for table in engine.portfolio.win_table().values()
        )
