"""Property-based tests (hypothesis) for core data structures and invariants."""

from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.lang import builder as b
from repro.lang.parser import parse_statement
from repro.lang.pretty import pretty_stmt
from repro.logic import formula as F
from repro.logic.evaluate import Valuation, evaluate
from repro.logic.formula import Const, conj, disj, neg, sym, var
from repro.solver.interface import Solver
from repro.solver.lia import CubeSolver, Status
from repro.solver.linear import LinearTerm, linearize
from repro.solver.normalize import to_dnf, to_nnf
from repro.semantics.interpreter import run_original, run_relaxed
from repro.semantics.state import State, Terminated

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

names = st.sampled_from(["x", "y", "z"])
small_ints = st.integers(min_value=-6, max_value=6)


@st.composite
def linear_terms(draw):
    coeffs = {sym(name): draw(small_ints) for name in draw(st.sets(names, max_size=3))}
    return LinearTerm.of(coeffs, draw(small_ints))


@st.composite
def atoms(draw):
    rel = draw(st.sampled_from([F.lt, F.le, F.gt, F.ge, F.eq, F.ne]))
    left = var(draw(names)) * draw(st.integers(min_value=-3, max_value=3)) + Const(draw(small_ints))
    right = var(draw(names)) + Const(draw(small_ints))
    return rel(left, right)


@st.composite
def formulas(draw, depth=2):
    if depth == 0:
        return draw(atoms())
    choice = draw(st.integers(min_value=0, max_value=3))
    if choice == 0:
        return draw(atoms())
    if choice == 1:
        return neg(draw(formulas(depth=depth - 1)))
    if choice == 2:
        return conj(draw(formulas(depth=depth - 1)), draw(formulas(depth=depth - 1)))
    return disj(draw(formulas(depth=depth - 1)), draw(formulas(depth=depth - 1)))


def random_valuation(draw):
    return Valuation(scalars={sym(name): draw(small_ints) for name in ["x", "y", "z"]})


# ---------------------------------------------------------------------------
# LinearTerm algebraic properties
# ---------------------------------------------------------------------------


class TestLinearTermProperties:
    @given(linear_terms(), linear_terms())
    def test_add_commutes(self, a, b_):
        assert a.add(b_) == b_.add(a)

    @given(linear_terms())
    def test_negate_is_involution(self, term):
        assert term.negate().negate() == term

    @given(linear_terms(), linear_terms(), st.dictionaries(names, small_ints, min_size=3))
    def test_add_is_pointwise(self, a, b_, assignment):
        values = {sym(name): value for name, value in assignment.items()}
        assert a.add(b_).evaluate(values) == a.evaluate(values) + b_.evaluate(values)

    @given(linear_terms(), small_ints, st.dictionaries(names, small_ints, min_size=3))
    def test_scale_is_pointwise(self, term, factor, assignment):
        values = {sym(name): value for name, value in assignment.items()}
        assert term.scale(factor).evaluate(values) == factor * term.evaluate(values)

    @given(linear_terms(), st.dictionaries(names, small_ints, min_size=3))
    def test_linearize_to_term_roundtrip(self, term, assignment):
        values = {sym(name): value for name, value in assignment.items()}
        roundtripped = linearize(term.to_term())
        assert roundtripped.evaluate(values) == term.evaluate(values)


# ---------------------------------------------------------------------------
# Normalisation preserves semantics
# ---------------------------------------------------------------------------


class TestNormalisationProperties:
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    @given(st.data())
    def test_nnf_preserves_semantics(self, data):
        formula = data.draw(formulas())
        valuation = random_valuation(data.draw)
        assert evaluate(to_nnf(formula), valuation) == evaluate(formula, valuation)

    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    @given(st.data())
    def test_dnf_preserves_semantics(self, data):
        formula = data.draw(formulas())
        valuation = random_valuation(data.draw)
        cubes = to_dnf(to_nnf(formula))
        dnf_value = any(
            all(evaluate(literal, valuation) for literal in cube) for cube in cubes
        )
        assert dnf_value == evaluate(formula, valuation)


# ---------------------------------------------------------------------------
# Solver soundness against brute-force evaluation
# ---------------------------------------------------------------------------


class TestSolverProperties:
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.data())
    def test_validity_agrees_with_bounded_refutation(self, data):
        solver = Solver()
        formula = data.draw(formulas())
        result = solver.check_valid(formula)
        if result.status is Status.VALID:
            # No counterexample may exist in a small box.
            import itertools

            for values in itertools.product(range(-4, 5), repeat=3):
                valuation = Valuation(
                    scalars={sym("x"): values[0], sym("y"): values[1], sym("z"): values[2]}
                )
                assert evaluate(formula, valuation)
        elif result.status is Status.INVALID:
            assert result.model is not None
            filled = {s: result.model.get(s, 0) for s in F.free_symbols(formula)}
            assert evaluate(formula, Valuation(scalars=filled)) is False

    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.data())
    def test_sat_models_are_models(self, data):
        solver = Solver()
        formula = data.draw(formulas())
        result = solver.check_sat(formula)
        if result.status is Status.SAT and result.model is not None:
            filled = {s: result.model.get(s, 0) for s in F.free_symbols(formula)}
            assert evaluate(formula, Valuation(scalars=filled)) is True

    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(atoms(), min_size=1, max_size=4))
    def test_cube_solver_sound_on_unsat(self, cube):
        solver = CubeSolver()
        result = solver.solve(cube)
        if result.status is Status.UNSAT:
            import itertools

            for values in itertools.product(range(-3, 4), repeat=3):
                valuation = Valuation(
                    scalars={sym("x"): values[0], sym("y"): values[1], sym("z"): values[2]}
                )
                assert not all(evaluate(literal, valuation) for literal in cube)


# ---------------------------------------------------------------------------
# Parser / pretty-printer round trip
# ---------------------------------------------------------------------------


@st.composite
def statements(draw, depth=2):
    choice = draw(st.integers(min_value=0, max_value=6 if depth > 0 else 3))
    name = draw(names)
    value = draw(small_ints)
    if choice == 0:
        return b.assign(name, b.add(name, value))
    if choice == 1:
        return b.assert_(b.le(name, value))
    if choice == 2:
        return b.assume(b.ge(name, value))
    if choice == 3:
        return b.relax(name, b.and_(b.le(value, name), b.le(name, value + 2)))
    if choice == 4:
        return b.block(draw(statements(depth=depth - 1)), draw(statements(depth=depth - 1)))
    if choice == 5:
        return b.if_(
            b.lt(name, value),
            draw(statements(depth=depth - 1)),
            draw(statements(depth=depth - 1)),
        )
    return b.relate(f"l{draw(st.integers(0, 99))}", b.same(name))


def _flatten(stmt):
    """Flatten nested sequences: the printer loses Seq association, which is
    semantically irrelevant, so round-trip equality is checked modulo it."""
    from repro.lang.ast import Seq, If, While

    if isinstance(stmt, Seq):
        return _flatten(stmt.first) + _flatten(stmt.second)
    if isinstance(stmt, If):
        return [
            (
                "if",
                stmt.condition,
                tuple(_flatten(stmt.then_branch)),
                tuple(_flatten(stmt.else_branch)),
            )
        ]
    if isinstance(stmt, While):
        return [
            ("while", stmt.condition, stmt.invariant, stmt.rel_invariant, tuple(_flatten(stmt.body)))
        ]
    return [stmt]


class TestRoundTripProperties:
    @settings(max_examples=80)
    @given(statements())
    def test_parse_pretty_roundtrip(self, stmt):
        reparsed = parse_statement(pretty_stmt(stmt))
        assert _flatten(reparsed) == _flatten(stmt)
        # A second round trip is a fixpoint.
        assert pretty_stmt(reparsed) == pretty_stmt(parse_statement(pretty_stmt(reparsed)))


# ---------------------------------------------------------------------------
# Dynamic semantics invariants
# ---------------------------------------------------------------------------


class TestSemanticsProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=-5, max_value=5), st.integers(min_value=0, max_value=4))
    def test_original_execution_is_a_relaxed_execution(self, x, e):
        """The original execution's result is always allowed by the relaxed
        semantics run with the minimal-change strategy."""
        program = parse_statement(
            "y = x; relax (x) st (y - e <= x && x <= y + e); d = x - y;"
        )
        state = State.of({"x": x, "e": e})
        original = run_original(program, state)
        from repro.semantics.choosers import MinimalChangeChooser

        relaxed = run_relaxed(program, state, chooser=MinimalChangeChooser())
        assert isinstance(original, Terminated) and isinstance(relaxed, Terminated)
        assert original.state == relaxed.state
        assert original.state.scalar("d") == 0

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=-5, max_value=5), st.integers(min_value=0, max_value=3), st.integers())
    def test_relaxed_execution_respects_relax_predicate(self, x, e, seed):
        from repro.semantics.choosers import RandomChooser

        program = parse_statement("y = x; relax (x) st (y - e <= x && x <= y + e);")
        state = State.of({"x": x, "e": e})
        outcome = run_relaxed(program, state, chooser=RandomChooser(seed=seed % 1000))
        assert isinstance(outcome, Terminated)
        assert abs(outcome.state.scalar("x") - x) <= e

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=8))
    def test_state_update_is_functional(self, value):
        state = State.of({"x": 0})
        updated = state.set_scalar("x", value)
        assert state.scalar("x") == 0
        assert updated.scalar("x") == value
