"""Tests for the acceptability verifier and the paper's three case studies."""

import pytest

from repro.hoare.verifier import AcceptabilitySpec, AcceptabilityVerifier, verify_acceptability
from repro.lang import builder as b
from repro.casestudies import (
    LUApproximateMemory,
    SwishDynamicKnobs,
    WaterParallelization,
    all_case_studies,
)
from repro.casestudies.swish import MINIMUM_RESULTS
from repro.semantics.state import Terminated


class TestAcceptabilityVerifier:
    def test_simple_program_with_default_spec(self):
        program = b.program(
            "noop-relax",
            b.relax("x", b.eq("x", "x")),
            b.relate("l", b.same("y")),
            variables=("x", "y"),
        )
        report = verify_acceptability(program)
        assert report.verified
        assert all(report.guarantees().values())

    def test_failed_relate_reported_in_guarantees(self):
        program = b.program(
            "bad-relax",
            b.relax("x", b.true),
            b.relate("l", b.same("x")),
            variables=("x",),
        )
        report = verify_acceptability(program)
        assert not report.relaxed.verified
        guarantees = report.guarantees()
        assert guarantees["original_progress_modulo_assumptions"]
        assert not guarantees["soundness_of_relational_assertions"]
        assert not guarantees["relaxed_progress"]

    def test_effort_metrics_present(self):
        program = b.program("tiny", b.assign("x", 1), variables=("x",))
        report = verify_acceptability(program)
        effort = report.effort()
        assert effort["original"]["rule_applications"] >= 1
        assert effort["relaxed"]["obligations"] >= 1

    def test_summary_lists_guarantees(self):
        program = b.program("tiny", b.assign("x", 1), variables=("x",))
        text = verify_acceptability(program).summary()
        assert "relative_relaxed_progress" in text

    def test_spec_accepts_explicit_conditions(self):
        program = b.program(
            "guarded",
            b.assert_(b.ge("x", 0)),
            variables=("x",),
        )
        spec = AcceptabilitySpec(precondition=b.ge("x", 0), rel_precondition=b.same("x"))
        report = AcceptabilityVerifier().verify(program, spec)
        assert report.verified


@pytest.mark.parametrize("case_study_class", all_case_studies())
class TestCaseStudyVerification:
    def test_verifies(self, case_study_class):
        report = case_study_class().verify()
        assert report.original.verified, report.original.summary()
        assert report.relaxed.verified, report.relaxed.summary()
        assert all(report.guarantees().values())

    def test_effort_is_nontrivial_and_relational_layer_larger(self, case_study_class):
        report = case_study_class().verify()
        effort = report.effort()
        assert effort["original"]["obligations"] >= 1
        assert effort["relaxed"]["obligations"] >= effort["original"]["obligations"]
        assert effort["relaxed"]["obligation_size"] > effort["original"]["obligation_size"]


@pytest.mark.parametrize("case_study_class", all_case_studies())
class TestCaseStudySimulation:
    def test_differential_simulation_satisfies_relates(self, case_study_class):
        summary = case_study_class().simulate(runs=8, seed=3)
        assert summary.runs == 8
        assert summary.relate_violations == 0
        assert summary.original_errors == 0
        assert summary.relaxed_errors == 0

    def test_metrics_recorded(self, case_study_class):
        summary = case_study_class().simulate(runs=4, seed=1)
        assert summary.records[0].metrics


class TestSwishSpecifics:
    def test_paper_proof_line_metadata(self):
        assert SwishDynamicKnobs.paper_proof_lines == 330
        assert WaterParallelization.paper_proof_lines == 310
        assert LUApproximateMemory.paper_proof_lines == 315

    def test_relaxed_never_presents_fewer_than_minimum(self):
        summary = SwishDynamicKnobs().simulate(runs=20, seed=5)
        for record in summary.records:
            original = record.metrics.get("presented_original", 0)
            relaxed = record.metrics.get("presented_relaxed", 0)
            if original >= MINIMUM_RESULTS:
                assert relaxed >= MINIMUM_RESULTS
            else:
                assert relaxed == original

    def test_broken_relaxation_is_rejected(self):
        # Lowering the floor to 5 in the relax statement must break the paper's
        # relate property (which promises at least 10 results).
        case_study = SwishDynamicKnobs()
        program = case_study.build_program()
        spec = case_study.acceptability_spec(program)

        broken = b.program(
            program.name,
            b.assume(b.ge("N", 0)),
            b.assign("original_max_r", "max_r"),
            b.relax(
                "max_r",
                b.or_(
                    b.and_(b.le("original_max_r", 10), b.eq("max_r", "original_max_r")),
                    b.and_(b.gt("original_max_r", 10), b.ge("max_r", 5)),
                ),
            ),
            b.assign("num_r", 0),
            case_study._format_loop,
            b.relate(
                "results",
                b.ror(
                    b.rand(b.rlt(b.o("num_r"), 10), b.req(b.o("num_r"), b.r("num_r"))),
                    b.rand(b.rge(b.o("num_r"), 10), b.rge(b.r("num_r"), 10)),
                ),
            ),
            variables=program.variables,
        )
        report = AcceptabilityVerifier().verify(broken, spec)
        assert not report.relaxed.verified


class TestLUSpecifics:
    def test_pivot_deviation_within_bound_dynamically(self):
        summary = LUApproximateMemory(error_bound=4).simulate(runs=15, seed=2)
        for record in summary.records:
            assert record.metrics["pivot_deviation"] <= record.metrics["error_bound"]

    def test_zero_error_bound_gives_exact_results(self):
        case_study = LUApproximateMemory(error_bound=0)
        states = [s for s in case_study.workloads(10, seed=0) if s.scalar("e") == 0]
        program = case_study.build_program()
        from repro.semantics.interpreter import run_original, run_relaxed

        for state in states:
            original = run_original(program, state)
            relaxed = run_relaxed(program, state, chooser=case_study.relaxed_chooser(1))
            assert isinstance(original, Terminated) and isinstance(relaxed, Terminated)
            assert original.state.scalar("maxval") == relaxed.state.scalar("maxval")


class TestWaterSpecifics:
    def test_ff_writes_stay_in_bounds(self):
        summary = WaterParallelization().simulate(runs=12, seed=7)
        for record in summary.records:
            relaxed = record.relaxed
            assert isinstance(relaxed, Terminated)
            length = record.initial_state.scalar("len_FF")
            assert all(index < length for index in relaxed.state.array("FF"))

    def test_racy_updates_observed(self):
        # Across enough runs, at least one relaxed execution should differ from
        # the original in RS (otherwise the substrate is not exercising races).
        summary = WaterParallelization().simulate(runs=12, seed=11)
        deviations = summary.metric_values("rs_total_absolute_deviation")
        assert any(value > 0 for value in deviations)
