"""Tests for the formula IR: constructors, traversals, fresh symbols."""

import pytest

from repro.logic import formula as F
from repro.logic.formula import (
    Const,
    Divides,
    Exists,
    FALSE,
    Forall,
    FreshSymbols,
    Select,
    Symbol,
    SymTerm,
    TRUE,
    Tag,
    conj,
    disj,
    exists,
    forall,
    formula_arrays,
    formula_size,
    free_symbols,
    implies,
    neg,
    sym,
    sym_o,
    sym_r,
    term_symbols,
    to_term,
    var,
)


class TestSymbols:
    def test_tagged_rendering(self):
        assert str(sym("x")) == "x"
        assert str(sym_o("x")) == "x<o>"
        assert str(sym_r("x")) == "x<r>"

    def test_ordering_is_total_over_tags(self):
        symbols = [sym_r("x"), sym("x"), sym_o("x"), sym("a")]
        ordered = sorted(symbols)
        assert ordered[0] == sym("a")
        assert ordered[1] == sym("x")

    def test_with_tag(self):
        assert sym("x").with_tag(Tag.RELAXED) == sym_r("x")


class TestConstructors:
    def test_conj_unit_laws(self):
        x = F.lt(var("x"), Const(0))
        assert conj() == TRUE
        assert conj(x) == x
        assert conj(TRUE, x) == x
        assert conj(FALSE, x) == FALSE

    def test_disj_unit_laws(self):
        x = F.lt(var("x"), Const(0))
        assert disj() == FALSE
        assert disj(x) == x
        assert disj(FALSE, x) == x
        assert disj(TRUE, x) == TRUE

    def test_conj_flattens_nested(self):
        a, b_, c = F.eq(var("a"), 0), F.eq(var("b"), 0), F.eq(var("c"), 0)
        flattened = conj(conj(a, b_), c)
        assert isinstance(flattened, F.And)
        assert len(flattened.operands) == 3

    def test_neg_simplifications(self):
        assert neg(TRUE) == FALSE
        assert neg(FALSE) == TRUE
        atom = F.lt(var("x"), 0)
        assert neg(neg(atom)) == atom

    def test_implies_simplifications(self):
        atom = F.lt(var("x"), 0)
        assert implies(TRUE, atom) == atom
        assert implies(FALSE, atom) == TRUE
        assert implies(atom, TRUE) == TRUE

    def test_exists_multiple_symbols(self):
        body = F.eq(var("x"), var("y"))
        quantified = exists([sym("x"), sym("y")], body)
        assert isinstance(quantified, Exists)
        assert isinstance(quantified.body, Exists)

    def test_forall_single_symbol(self):
        quantified = forall(sym("x"), F.ge(var("x"), var("x")))
        assert isinstance(quantified, Forall)

    def test_to_term_rejects_bool(self):
        with pytest.raises(TypeError):
            to_term(True)

    def test_term_operator_overloads(self):
        expr = var("x") + 1 - var("y") * 2
        assert isinstance(expr, F.Sub)


class TestTraversals:
    def test_free_symbols_simple(self):
        formula = F.lt(var("x") + var("y"), Const(3))
        assert free_symbols(formula) == {sym("x"), sym("y")}

    def test_free_symbols_excludes_bound(self):
        formula = exists(sym("x"), F.lt(var("x"), var("y")))
        assert free_symbols(formula) == {sym("y")}

    def test_free_symbols_divides(self):
        assert free_symbols(Divides(2, var("n"))) == {sym("n")}

    def test_formula_arrays(self):
        formula = F.eq(Select(Symbol("A"), var("i")), Const(0))
        assert formula_arrays(formula) == {Symbol("A")}

    def test_term_symbols_in_select_index(self):
        term = Select(Symbol("A"), var("i") + var("j"))
        assert term_symbols(term) == {sym("i"), sym("j")}

    def test_formula_size_monotone(self):
        small = F.lt(var("x"), 0)
        big = conj(small, F.gt(var("y"), 3), exists(sym("z"), F.eq(var("z"), 0)))
        assert formula_size(big) > formula_size(small)


class TestFreshSymbols:
    def test_fresh_avoids_used_names(self):
        fresh = FreshSymbols(["x_f1"])
        symbol = fresh.fresh("x")
        assert symbol.name != "x_f1"

    def test_fresh_symbols_are_distinct(self):
        fresh = FreshSymbols()
        first = fresh.fresh("x")
        second = fresh.fresh("x")
        assert first != second

    def test_fresh_preserves_tag(self):
        fresh = FreshSymbols()
        assert fresh.fresh("x", Tag.RELAXED).tag is Tag.RELAXED

    def test_reserve(self):
        fresh = FreshSymbols()
        fresh.reserve(["y_f1"])
        assert fresh.fresh("y").name != "y_f1"
