"""The vector backend: three-way differential parity and sound divergence.

The contract of :mod:`repro.solver.vector` (with :mod:`repro.solver.backend`
and the dispatch in :mod:`repro.solver.models`) is *conclusive-answer
identity* with the compiled backend, under PR 4's sound-divergence rule:

* any model the vector search reports is a genuine model (it satisfies the
  tree walker), and whenever the compiled search finds a model the vector
  search finds the *same* model — the batch mask only rejects rows, and
  accepted rows run the very same compiled checker;
* the only permitted divergence is an error-abort (``None``/UNKNOWN on the
  scalar backends) becoming a conclusive answer on the vector backend —
  never the reverse.  ``test_sound_divergence_pin`` pins a concrete case;
* cube-level decisions agree: compiled SAT implies vector SAT with the same
  model, compiled UNSAT implies vector UNSAT, and a vector UNSAT never
  contradicts a conclusive compiled answer;
* Monte Carlo scores are *bit-identical* across backends (the columnar
  aggregation reduces sequentially, not pairwise).

Hypothesis drives the differentials over randomly generated formulas; the
registry tests cover selection, ``auto`` resolution and the numpy-free
degradation path.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.logic import formula as F
from repro.logic.evaluate import Valuation, evaluate
from repro.logic.formula import (
    Add,
    Const,
    Div,
    Divides,
    Exists,
    Forall,
    Ite,
    Mul,
    conj,
    disj,
    eq,
    ge,
    gt,
    le,
    lt,
    ne,
    neg,
    sym,
    var,
)
from repro.solver import backend as backend_module
from repro.solver.backend import (
    BACKENDS,
    RESOLVED_BACKENDS,
    BackendUnavailableError,
    active_backend,
    numpy_available,
    requested_backend,
    set_backend,
    use_backend,
)
from repro.solver.interface import Solver
from repro.solver.lia import Status
from repro.solver.models import bounded_model_search, enumerate_models
from repro.solver.vector import (
    columnar_max,
    columnar_sum,
    plan_conjuncts,
    reset_vector_stats,
    vector_stats,
)

NAMES = ["x", "y", "z"]
names = st.sampled_from(NAMES)
small_ints = st.integers(min_value=-4, max_value=4)


@st.composite
def total_terms(draw, depth=2):
    """Terms from the *total* fragment: no Div/Mod/Select, so evaluation
    under a full assignment can never raise."""
    if depth == 0 or draw(st.booleans()):
        if draw(st.booleans()):
            return var(draw(names))
        return Const(draw(small_ints))
    choice = draw(st.integers(min_value=0, max_value=5))
    if choice <= 4:
        op = draw(st.sampled_from([F.Add, F.Sub, F.Mul, F.Min, F.Max]))
        return op(draw(total_terms(depth=depth - 1)), draw(total_terms(depth=depth - 1)))
    return Ite(
        draw(total_formulas(depth=0)),
        draw(total_terms(depth=depth - 1)),
        draw(total_terms(depth=depth - 1)),
    )


@st.composite
def total_atoms(draw):
    choice = draw(st.integers(min_value=0, max_value=6))
    if choice == 6:
        return Divides(draw(st.sampled_from([-3, -2, 2, 3])), draw(total_terms()))
    rel = [F.lt, F.le, F.gt, F.ge, F.eq, F.ne][choice]
    return rel(draw(total_terms()), draw(total_terms()))


@st.composite
def total_formulas(draw, depth=2):
    if depth == 0:
        return draw(total_atoms())
    choice = draw(st.integers(min_value=0, max_value=7))
    if choice == 0:
        return draw(total_atoms())
    if choice == 1:
        return neg(draw(total_formulas(depth=depth - 1)))
    if choice == 2:
        return conj(draw(total_formulas(depth=depth - 1)), draw(total_formulas(depth=depth - 1)))
    if choice == 3:
        return disj(draw(total_formulas(depth=depth - 1)), draw(total_formulas(depth=depth - 1)))
    if choice == 4:
        return F.Implies(
            draw(total_formulas(depth=depth - 1)), draw(total_formulas(depth=depth - 1))
        )
    if choice == 5:
        return F.Iff(draw(total_formulas(depth=depth - 1)), draw(total_formulas(depth=depth - 1)))
    quantifier = Exists if draw(st.booleans()) else Forall
    return quantifier(sym(draw(names)), draw(total_formulas(depth=depth - 1)))


@st.composite
def linear_atoms(draw):
    """Linear comparisons — the fragment the DNF cube pipeline decides."""
    left = draw(total_terms(depth=1))
    rel = draw(st.sampled_from([F.lt, F.le, F.gt, F.ge, F.eq, F.ne]))
    return rel(left, Const(draw(small_ints)))


@st.composite
def cube_formulas(draw):
    """Small DNF-shaped formulas that exercise the cube loop and prefilter."""
    cubes = []
    for _ in range(draw(st.integers(min_value=1, max_value=10))):
        literals = [draw(linear_atoms()) for _ in range(draw(st.integers(1, 3)))]
        cubes.append(conj(*literals) if len(literals) > 1 else literals[0])
    return disj(*cubes) if len(cubes) > 1 else cubes[0]


def _search_all_backends(formula, **kwargs):
    results = {}
    for name in RESOLVED_BACKENDS:
        with use_backend(name):
            results[name] = bounded_model_search(formula, **kwargs)
    return results


numpy_required = pytest.mark.skipif(
    not numpy_available(), reason="vector backend requires numpy"
)


class TestBackendRegistry:
    def test_backend_universe(self):
        assert BACKENDS == ("auto", "tree", "compiled", "vector")
        assert RESOLVED_BACKENDS == ("tree", "compiled", "vector")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            set_backend("quantum")

    def test_use_backend_restores_previous(self):
        before = requested_backend()
        with use_backend("tree"):
            assert requested_backend() == "tree"
            assert active_backend() == "tree"
        assert requested_backend() == before

    def test_use_backend_none_is_noop(self):
        before = requested_backend()
        with use_backend(None):
            assert requested_backend() == before

    def test_auto_resolution(self):
        with use_backend("auto"):
            expected = "vector" if numpy_available() else "compiled"
            assert active_backend() == expected

    def test_vector_unavailable_without_numpy(self, monkeypatch):
        monkeypatch.setattr(backend_module, "_numpy_module", None)
        monkeypatch.setattr(backend_module, "_numpy_probed", True)
        assert not numpy_available()
        with pytest.raises(BackendUnavailableError):
            set_backend("vector")
        # auto silently degrades instead of failing
        with use_backend("auto"):
            assert active_backend() == "compiled"


class TestNumpyFreeDegradation:
    """With numpy absent the solver must behave exactly like ``compiled``."""

    def _without_numpy(self, monkeypatch):
        monkeypatch.setattr(backend_module, "_numpy_module", None)
        monkeypatch.setattr(backend_module, "_numpy_probed", True)

    def test_search_still_works(self, monkeypatch):
        self._without_numpy(monkeypatch)
        x, y = var("x"), var("y")
        with use_backend("auto"):
            model = bounded_model_search(conj(eq(x, Const(3)), gt(y, x)))
        assert model == {sym("x"): 3, sym("y"): 4}

    def test_plan_conjuncts_degrades_to_none(self, monkeypatch):
        self._without_numpy(monkeypatch)
        assert plan_conjuncts([ge(var("x"), Const(0))]) is None

    def test_columnar_aggregation_falls_back_to_python(self, monkeypatch):
        self._without_numpy(monkeypatch)
        values = [0.1, 0.2, 0.3]
        assert columnar_sum(values) == sum(values)
        assert columnar_max(values) == max(values)
        assert columnar_sum([]) == 0.0
        assert columnar_max([]) == 0.0


@numpy_required
class TestModelSearchParity:
    @settings(max_examples=120, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(total_formulas())
    def test_three_way_search_parity(self, formula):
        results = _search_all_backends(formula, radius=2, quantifier_domain_radius=2)
        # Any reported model is a genuine model under the tree semantics.
        for name, model in results.items():
            if model is not None:
                assert evaluate(
                    formula, Valuation(scalars=dict(model)), range(-2, 3)
                ), f"{name} reported a non-model"
        # The total fragment has no error channel, so all three must agree
        # exactly (same model: all sweep the identical candidate order).
        assert results["tree"] == results["compiled"] == results["vector"]

    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(total_formulas())
    def test_enumerate_models_parity(self, formula):
        outcomes = {}
        for name in RESOLVED_BACKENDS:
            with use_backend(name):
                outcomes[name] = enumerate_models(
                    formula, radius=2, limit=5, quantifier_domain_radius=2
                )
        assert outcomes["tree"] == outcomes["compiled"] == outcomes["vector"]

    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(total_formulas())
    def test_budget_parity(self, formula):
        """Both backends stop after exactly the same assignment budget."""
        results = _search_all_backends(
            formula, radius=2, quantifier_domain_radius=2, max_assignments=7
        )
        assert results["compiled"] == results["vector"]

    def test_vector_path_actually_ran(self):
        reset_vector_stats()
        x, y = var("x"), var("y")
        with use_backend("vector"):
            model = bounded_model_search(conj(ge(Add(x, y), Const(7)), le(x, Const(4))))
        assert model is not None
        stats = vector_stats()
        assert stats["searches"] >= 1
        assert stats["rows_evaluated"] > 0


@numpy_required
class TestCubeDecisionParity:
    @settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(cube_formulas())
    def test_cube_wave_parity(self, formula):
        verdicts = {}
        for name in ("compiled", "vector"):
            with use_backend(name):
                verdicts[name] = Solver().check_sat(formula)
        compiled, vectored = verdicts["compiled"], verdicts["vector"]
        if compiled.status is Status.SAT:
            assert vectored.status is Status.SAT
            assert vectored.model == compiled.model
        elif compiled.status is Status.UNSAT:
            assert vectored.status is Status.UNSAT
        if vectored.status is Status.UNSAT:
            # a vector UNSAT may settle a compiled UNKNOWN, never flip a SAT
            assert compiled.status in (Status.UNSAT, Status.UNKNOWN)

    def test_prefilter_skips_infeasible_cubes(self):
        x, y = var("x"), var("y")
        parts = [conj(ge(x, Const(i + 100)), lt(x, Const(i))) for i in range(10)]
        parts.append(conj(ge(x, Const(1)), lt(x, Const(3)), eq(y, Const(5))))
        formula = disj(*parts)
        with use_backend("vector"):
            solver = Solver()
            result = solver.check_sat(formula)
        assert result.status is Status.SAT
        assert result.model == {sym("x"): 1, sym("y"): 5}
        assert solver.statistics.prefiltered_cubes == 10
        with use_backend("compiled"):
            compiled = Solver().check_sat(formula)
        assert compiled.status is Status.SAT
        assert compiled.model == result.model


@numpy_required
class TestSoundDivergence:
    def test_sound_divergence_pin(self):
        """The one permitted divergence, pinned concretely.

        ``Div(6, x)`` errors at ``x = 0``.  The scalar sweeps visit
        ``x = 0`` before any model and abort (``None`` — an UNKNOWN to the
        caller).  The vector mask decides ``x + x >= 2`` for the whole
        batch first, rejecting every ``x <= 0`` row without evaluating the
        division, and the surviving row ``x = 1`` is a genuine model.
        """
        x = var("x")
        formula = conj(eq(Div(Const(6), x), Const(6)), ge(Add(x, x), Const(2)))
        results = _search_all_backends(formula)
        assert results["tree"] is None
        assert results["compiled"] is None
        assert results["vector"] == {sym("x"): 1}
        # ... and the divergent answer is conclusive and correct:
        assert evaluate(formula, Valuation(scalars=dict(results["vector"])))

    @settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(total_formulas(), st.sampled_from([None, 1]))
    def test_divergence_direction_only(self, guard, divisor_slot):
        """Mixing an erroring conjunct in never flips a conclusive answer."""
        x = var("x")
        erroring = eq(Div(Const(6), x), Const(6))
        formula = conj(erroring, guard) if divisor_slot else conj(guard, erroring)
        results = _search_all_backends(formula, radius=2, quantifier_domain_radius=2)
        if results["compiled"] is not None:
            assert results["vector"] == results["compiled"]
        if results["vector"] is not None:
            assert evaluate(
                formula, Valuation(scalars=dict(results["vector"])), range(-2, 3)
            )


@numpy_required
class TestScoreParity:
    def test_monte_carlo_scores_bit_identical(self):
        from repro.casestudies.lu import LUApproximateMemory
        from repro.explore.scoring import score_candidate

        case = LUApproximateMemory()
        program = case.build_program()
        scores = {}
        for name in ("tree", "compiled", "vector"):
            with use_backend(name):
                scores[name] = score_candidate(case, program, samples=4, seed=3).as_dict()
        assert scores["tree"] == scores["compiled"] == scores["vector"]

    def test_columnar_sum_matches_python_sum_bitwise(self):
        values = [0.1, 0.7, 1e-17, -0.3, 2.5e-9, 0.1111111]
        assert columnar_sum(values) == sum(values)
        assert columnar_max(values) == max(values)
