"""Tests for relaxation-site discovery and application (repro.relaxations.sites)."""

import pytest

from repro.casestudies.lu import LUApproximateMemory
from repro.casestudies.swish import SwishDynamicKnobs
from repro.casestudies.water import WaterParallelization
from repro.lang import builder as b
from repro.lang.analysis import check_program
from repro.lang.ast import Assign, If, Relax, Seq, While
from repro.relaxations.sites import RelaxationSite, apply_site, discover_sites
from repro.relaxations.transforms import _replace_statement, perforate_loop, restrict_relax
from repro.semantics.interpreter import run_original, run_relaxed
from repro.semantics.choosers import FixedChoiceChooser
from repro.semantics.state import State


class TestReplaceStatement:
    def test_replaces_after_an_if_containing_a_seq(self):
        """Regression: a Seq inside an If used to absorb the replacement
        attempt, leaving statements after the If unreachable."""
        branch = b.if_(b.gt("a", "m"), b.block(b.assign("m", "a"), b.assign("p", "i")))
        increment = b.assign("i", b.add("i", 1))
        body = b.block(b.assign("a", 1), branch, increment)
        replaced = _replace_statement(body, increment, b.assign("i", b.add("i", "s")))
        assert replaced != body
        assert any(
            isinstance(node, Assign) and node.value == b.add("i", "s")
            for node in replaced.walk()
        )

    def test_identity_preserved_when_target_absent(self):
        body = b.block(b.assign("x", 1), b.assign("y", 2))
        assert _replace_statement(body, b.assign("z", 3), b.skip) is body

    def test_lu_perforation_actually_changes_the_increment(self):
        case = LUApproximateMemory()
        program = case.build_program()
        loop = next(n for n in program.body.walk() if isinstance(n, While))
        result = perforate_loop(program, loop, counter="i", perforation_stride_var="s")
        assert any(
            isinstance(node, Assign) and node.value == b.add("i", "s")
            for node in result.program.body.walk()
        )


class TestDiscovery:
    def test_lu_sites(self):
        program = LUApproximateMemory().build_program()
        sites = discover_sites(program)
        kinds = {site.kind for site in sites}
        assert kinds == {"perforate-loop", "restrict-relax", "dynamic-knob"}
        ids = [site.site_id for site in sites]
        assert len(ids) == len(set(ids))
        assert any(site.site_id.startswith("restrict:a@") for site in sites)

    def test_swish_sites_include_max_r_restriction(self):
        program = SwishDynamicKnobs().build_program()
        assert any(
            site.kind == "restrict-relax" and site.names[0] == "max_r"
            for site in discover_sites(program)
        )

    def test_water_has_no_restrict_site_for_array_relax(self):
        program = WaterParallelization().build_program()
        assert not any(
            site.kind == "restrict-relax" for site in discover_sites(program)
        )

    def test_knob_sites_only_for_unwritten_scalars(self):
        program = LUApproximateMemory().build_program()
        for site in discover_sites(program):
            if site.kind == "dynamic-knob":
                assert site.names[0] == "N"

    def test_deterministic_order(self):
        program = LUApproximateMemory().build_program()
        first = [site.site_id for site in discover_sites(program)]
        second = [site.site_id for site in discover_sites(program)]
        assert first == second


class TestApplication:
    def test_apply_every_lu_site_yields_well_formed_program(self):
        case = LUApproximateMemory()
        program = case.build_program()
        for site in discover_sites(program):
            result = apply_site(program, site)
            assert check_program(result.program).ok

    def test_restrict_narrows_the_envelope(self):
        case = LUApproximateMemory()
        program = case.build_program()
        site = next(
            s for s in discover_sites(program) if s.site_id.endswith("d0")
            and s.kind == "restrict-relax"
        )
        candidate = apply_site(program, site).program
        initial = case.workloads(3, seed=0)[2]
        original = run_original(candidate, initial)
        # With a +-0 envelope every relaxed choice must equal the original.
        relaxed = run_relaxed(
            candidate, initial, chooser=FixedChoiceChooser([], strict=False)
        )
        assert original.state.scalar("maxval") == relaxed.state.scalar("maxval")

    def test_stale_site_raises(self):
        program = LUApproximateMemory().build_program()
        sites = discover_sites(program)
        restrict = next(s for s in sites if s.kind == "restrict-relax")
        transformed = apply_site(program, restrict).program
        # The original relax no longer occurs in the transformed program.
        with pytest.raises(ValueError):
            apply_site(transformed, restrict)

    def test_unknown_kind_raises(self):
        program = LUApproximateMemory().build_program()
        with pytest.raises(ValueError):
            apply_site(program, RelaxationSite(kind="nope", site_id="x"))

    def test_restrict_relax_missing_statement_raises(self):
        program = b.program("p", b.assign("x", 1), variables=("x",))
        with pytest.raises(ValueError):
            restrict_relax(program, Relax(("x",), b.true), b.le("x", 5))
