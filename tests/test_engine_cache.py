"""Tests for the obligation result cache (LRU + persistent JSON store)."""

import json
import os

import pytest

from repro.engine.cache import ObligationCache, _symbol_from_str, _symbol_to_str
from repro.logic.formula import Symbol, Tag
from repro.solver.lia import Status


class TestLRU:
    def test_put_get_roundtrip(self):
        cache = ObligationCache(capacity=4)
        assert cache.put("k1", Status.VALID, reason="proved", strategy="full")
        entry = cache.get("k1")
        assert entry is not None
        assert entry.status is Status.VALID
        assert entry.reason == "proved"
        assert entry.strategy == "full"

    def test_miss_counting(self):
        cache = ObligationCache(capacity=4)
        assert cache.get("absent") is None
        cache.put("k", Status.SAT)
        cache.get("k")
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_unknown_is_never_cached(self):
        cache = ObligationCache(capacity=4)
        assert not cache.put("k", Status.UNKNOWN, reason="budget exhausted")
        assert cache.get("k") is None
        assert len(cache) == 0

    def test_lru_eviction_order(self):
        cache = ObligationCache(capacity=2)
        cache.put("a", Status.VALID)
        cache.put("b", Status.VALID)
        cache.get("a")  # refresh a; b is now least recently used
        cache.put("c", Status.VALID)
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None

    def test_model_is_copied(self):
        cache = ObligationCache(capacity=4)
        model = {Symbol("x"): 3}
        cache.put("k", Status.INVALID, model=model)
        model[Symbol("x")] = 99
        assert cache.get("k").model[Symbol("x")] == 3

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            ObligationCache(capacity=0)


class TestPersistence:
    def test_disk_roundtrip(self, tmp_path):
        cache = ObligationCache(capacity=8, cache_dir=str(tmp_path))
        cache.put(
            "k1",
            Status.INVALID,
            model={Symbol("x"): -2, Symbol("y", Tag.ORIGINAL): 7},
            reason="counterexample found",
            strategy="cube-fast",
        )
        cache.put("k2", Status.VALID)
        path = cache.save()
        assert path is not None and os.path.exists(path)

        reloaded = ObligationCache(capacity=8, cache_dir=str(tmp_path))
        entry = reloaded.get("k1")
        assert entry.status is Status.INVALID
        assert entry.model == {Symbol("x"): -2, Symbol("y", Tag.ORIGINAL): 7}
        assert entry.strategy == "cube-fast"
        assert reloaded.get("k2").status is Status.VALID

    def test_corrupt_store_is_discarded(self, tmp_path):
        store = tmp_path / "obligation_cache.json"
        store.write_text("{not json")
        cache = ObligationCache(cache_dir=str(tmp_path))
        assert len(cache) == 0

    def test_version_mismatch_is_discarded(self, tmp_path):
        store = tmp_path / "obligation_cache.json"
        store.write_text(json.dumps({"version": 999, "entries": {"k": {"status": "valid"}}}))
        cache = ObligationCache(cache_dir=str(tmp_path))
        assert len(cache) == 0

    def test_save_without_dir_is_noop(self):
        cache = ObligationCache()
        cache.put("k", Status.VALID)
        assert cache.save() is None


class TestSymbolSerialisation:
    @pytest.mark.parametrize(
        "symbol",
        [Symbol("x"), Symbol("x", Tag.ORIGINAL), Symbol("idx_f3", Tag.RELAXED)],
    )
    def test_roundtrip(self, symbol):
        assert _symbol_from_str(_symbol_to_str(symbol)) == symbol
