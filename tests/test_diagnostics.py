"""Tests for the failure-forensics layer (provenance, diagnostics, explain).

Covers the acceptance criteria of the forensics PR:

* seeded failing relaxations of three registered case studies produce
  diagnostics with an exact source span, the applied relaxation site, and a
  concrete counterexample under which the violated formula mechanically
  evaluates to false;
* every obligation of every registered case study carries non-empty
  provenance whose span resolves into the program source;
* provenance and counterexample models survive pickling (the ``--jobs``
  worker round-trip) and the persistent disk cache, fully typed;
* UNKNOWN verdicts surface the solver's stored reason string;
* the ``diagnostics`` JSON section round-trips losslessly through
  ``repro explain --from-json``.
"""

import os
import pickle

import pytest

from repro.casestudies import all_case_studies, get_case_study
from repro.diagnostics import (
    AtomEvaluation,
    FailureDiagnostic,
    diagnose_report,
    render_diagnostics,
    reevaluate,
    source_excerpt,
)
from repro.diagnostics.explain import (
    ExplainReport,
    diagnostics_section,
    explain_case_study,
    explain_from_payload,
)
from repro.engine import ObligationEngine
from repro.engine.cache import ObligationCache
from repro.hoare.verifier import AcceptabilitySpec, AcceptabilityVerifier
from repro.lang.ast import Span
from repro.lang.parser import parse_program
from repro.logic.formula import Symbol, Tag
from repro.solver.lia import Status

BROKEN_FIXTURE = os.path.join(
    os.path.dirname(__file__), "fixtures", "broken", "broken_relax.rlx"
)

#: Registered case studies with a seeded knob relaxation known to FAIL
#: verification with a concrete counterexample (acceptance set: >= 3).
FAILING_KNOBS = [
    ("lu-approximate-memory", "knob:N:f1"),
    ("sum-reduction-perforation", "knob:N:f1"),
    ("water-parallelization", "knob:N:f1"),
]


def _broken_program():
    with open(BROKEN_FIXTURE, "r", encoding="utf-8") as handle:
        return parse_program(handle.read(), name="broken_relax")


class TestSeededFailures:
    """Acceptance: explain pins span, site, and a mechanically-confirmed model."""

    @pytest.mark.parametrize("study,site", FAILING_KNOBS)
    def test_explain_reports_span_site_and_confirmed_model(self, study, site):
        report = explain_case_study(study, [site])
        assert not report.verified
        assert report.sites == (site,)
        assert report.diagnostics, "a failing relaxation must produce diagnostics"
        diagnostic = report.diagnostics[0]
        # Exact source anchoring: a resolved span, not "unknown location".
        assert diagnostic.span is not None
        assert diagnostic.location.startswith("line")
        assert diagnostic.excerpt and ">" in diagnostic.excerpt
        # The applied relaxation site is named.
        assert diagnostic.sites == [site]
        assert diagnostic.study == study
        # A concrete counterexample, confirmed mechanically: substituting the
        # model into the violated formula yields false.
        assert diagnostic.model, "INVALID verdicts must carry a model"
        assert all(isinstance(v, int) for v in diagnostic.model.values())
        assert diagnostic.formula_value is False
        assert diagnostic.check_method in ("evaluation", "solver-substitution")

    def test_unknown_site_raises_with_applicable_sites(self):
        with pytest.raises(ValueError) as excinfo:
            explain_case_study("lu", ["knob:nonexistent:f9"])
        assert "applicable sites" in str(excinfo.value)
        assert "knob:N:f1" in str(excinfo.value)

    def test_verified_study_explains_to_no_failures(self):
        report = explain_case_study("lu")
        assert report.verified
        assert report.diagnostics == []
        assert "VERIFIED" in report.render()


class TestUnknownReasonSurfacing:
    def test_unknown_verdict_carries_solver_reason(self):
        report = explain_case_study("swish-dynamic-knobs", ["knob:N:f1"])
        assert not report.verified
        unknowns = [d for d in report.diagnostics if d.status == "unknown"]
        assert unknowns, "swish + knob:N:f1 is the seeded UNKNOWN fixture"
        assert unknowns[0].reason, "UNKNOWN must surface the solver's reason"
        assert unknowns[0].reason in render_diagnostics(report.diagnostics)

    def test_reason_reaches_layer_summary_and_json(self):
        program = _broken_program()
        verifier = AcceptabilityVerifier()
        report = verifier.verify(program, AcceptabilitySpec())
        assert not report.verified
        undischarged = report.relaxed.as_dict()["undischarged"]
        assert undischarged and undischarged[0]["reason"]
        text = report.relaxed.summary()
        assert undischarged[0]["reason"] in text
        assert "@ line" in text  # provenance location rides along


class TestProvenanceEverywhere:
    @pytest.mark.parametrize(
        "study_cls", all_case_studies(), ids=lambda cls: cls.name
    )
    def test_every_obligation_carries_resolving_provenance(self, study_cls):
        case = study_cls()
        program = case.build_program()
        spec = case.acceptability_spec(program)
        bundle = AcceptabilityVerifier().collect(program, spec, study=case.name)
        source = bundle.program.source
        assert source, "collect must recover program source text"
        lines = source.splitlines()
        for collector in (bundle.original, bundle.relaxed):
            assert collector.obligations, "every layer produces obligations"
            for obligation in collector.obligations:
                provenance = obligation.provenance
                assert provenance is not None
                assert provenance.program == program.name
                assert provenance.study == case.name
                assert provenance.rule and provenance.system and provenance.kind
                span = provenance.span
                assert span is not None, (
                    f"{provenance.rule} obligation has no span"
                )
                # The span resolves into the recovered source text.
                assert 1 <= span.line <= span.end_line <= len(lines)
                assert span.column >= 1 and span.end_column >= 1

    def test_provenance_survives_pickling(self):
        case = get_case_study("lu")
        program = case.build_program()
        bundle = AcceptabilityVerifier().collect(
            program, case.acceptability_spec(program), study=case.name
        )
        for obligation in bundle.original.obligations + bundle.relaxed.obligations:
            clone = pickle.loads(pickle.dumps(obligation))
            assert clone.provenance == obligation.provenance
            assert clone.provenance.span == obligation.provenance.span

    def test_provenance_survives_jobs_worker_roundtrip(self):
        program = _broken_program()
        engine = ObligationEngine.for_batch(jobs=2)
        report = AcceptabilityVerifier(engine=engine).verify(
            program, AcceptabilitySpec()
        )
        assert not report.verified
        failures = report.relaxed.undischarged()
        assert failures
        provenance = failures[0].obligation.provenance
        assert provenance is not None and provenance.span is not None
        assert provenance.statement.startswith("relate")
        # The model made it back across the process boundary, typed.
        model = failures[0].counterexample
        assert model
        assert all(isinstance(symbol, Symbol) for symbol in model)
        assert all(isinstance(value, int) for value in model.values())


class TestModelCacheRoundTrip:
    def test_counterexample_model_survives_disk_roundtrip_typed(self, tmp_path):
        cache = ObligationCache(cache_dir=str(tmp_path))
        model = {
            Symbol("x", Tag.ORIGINAL): 0,
            Symbol("x", Tag.RELAXED): -3,
            Symbol("n", None): 17,
        }
        cache.put("fp", Status.INVALID, model=model, reason="counterexample found")
        cache.save()

        replayed = ObligationCache(cache_dir=str(tmp_path)).get("fp")
        assert replayed is not None and replayed.origin == "disk"
        assert replayed.status is Status.INVALID
        assert replayed.reason == "counterexample found"
        assert replayed.model == model
        for symbol, value in replayed.model.items():
            assert isinstance(symbol, Symbol) and isinstance(value, int)
        # Tags round-trip as Tag values, not strings.
        tags = {symbol.tag for symbol in replayed.model}
        assert tags == {Tag.ORIGINAL, Tag.RELAXED, None}

    def test_explain_replays_model_from_warm_cache(self, tmp_path):
        cold_engine = ObligationEngine.for_batch(cache_dir=str(tmp_path))
        cold = explain_case_study("lu", ["knob:N:f1"], engine=cold_engine)
        cold_engine.save()
        assert cold.diagnostics and cold.diagnostics[0].model

        warm_engine = ObligationEngine.for_batch(cache_dir=str(tmp_path))
        warm = explain_case_study("lu", ["knob:N:f1"], engine=warm_engine)
        assert warm_engine.statistics.as_dict()["solver_calls"] == 0
        assert warm.diagnostics
        assert warm.diagnostics[0].model == cold.diagnostics[0].model
        assert warm.diagnostics[0].formula_value is False


class TestDiagnosticRoundTrip:
    def _diagnostic(self):
        program = _broken_program()
        report = AcceptabilityVerifier().verify(program, AcceptabilitySpec())
        diagnostics = diagnose_report(report, program=program)
        assert diagnostics
        return diagnostics[0]

    def test_as_dict_from_dict_is_lossless(self):
        diagnostic = self._diagnostic()
        clone = FailureDiagnostic.from_dict(diagnostic.as_dict())
        assert clone == diagnostic
        assert clone.render() == diagnostic.render()

    def test_render_names_rule_model_and_source(self):
        text = self._diagnostic().render()
        assert "[relate]" in text
        assert "x<o> = 0" in text
        assert "relate exact" in text
        assert "confirmed mechanically" in text

    def test_explain_from_payload_replays_losslessly(self):
        program = _broken_program()
        report = AcceptabilityVerifier().verify(program, AcceptabilitySpec())
        diagnostics = diagnose_report(report, program=program)
        payload = {
            "program": program.name,
            "verified": False,
            "diagnostics": diagnostics_section(diagnostics),
        }
        replayed = explain_from_payload(payload)
        assert replayed.replayed and not replayed.verified
        assert replayed.diagnostics == diagnostics

    def test_explain_from_payload_requires_diagnostics_section(self):
        with pytest.raises(ValueError) as excinfo:
            explain_from_payload({"verified": False})
        assert "--explain" in str(excinfo.value)


class TestRenderHelpers:
    def test_source_excerpt_marks_span_with_carets(self):
        source = "vars x;\nx = 0;\nassert x == 0;\n"
        excerpt = source_excerpt(source, Span(3, 1, 3, 15), context=1)
        assert "> 3 | assert x == 0;" in excerpt
        assert "^^^^^^^^^^^^^^" in excerpt
        assert "  2 | x = 0;" in excerpt

    def test_reevaluate_confirms_simple_counterexample(self):
        from repro.logic.formula import Atom, Rel, SymTerm

        x_o = Symbol("x", Tag.ORIGINAL)
        x_r = Symbol("x", Tag.RELAXED)
        formula = Atom(Rel.EQ, SymTerm(x_o), SymTerm(x_r))
        assert reevaluate(formula, {x_o: 0, x_r: 1}) is False
        assert reevaluate(formula, {x_o: 1, x_r: 1}) is True

    def test_atom_evaluation_roundtrip(self):
        atom = AtomEvaluation("(x<o> == x<r>)", False, "")
        assert AtomEvaluation.from_dict(atom.as_dict()) == atom

    def test_render_diagnostics_empty(self):
        assert "every obligation discharged" in render_diagnostics([])

    def test_explain_report_render_mentions_replay(self):
        report = ExplainReport(
            study="s", program="p", verified=True, replayed=True
        )
        assert "replayed" in report.render()
