"""The committed corpus must replay byte-identically, forever.

``tests/corpus/`` is the standing regression instrument: committed sources
plus canonical verify outcomes (fingerprints, statuses, digests).  Any
engine/backend/proof-rule change that alters a byte of a replayed outcome
fails here (and in the CI ``corpus-replay`` job) before it lands.
"""

import json
from pathlib import Path

import pytest

from repro.fuzz import replay_corpus, run_fuzz, synthesize_corpus, write_corpus
from repro.fuzz.corpus import EXPECTED_DIR, MANIFEST, PROGRAM_DIR

CORPUS = Path(__file__).parent / "corpus"


class TestCommittedCorpus:
    def test_layout(self):
        manifest = json.loads((CORPUS / MANIFEST).read_text())
        assert manifest["seed"] == 0
        assert manifest["count"] >= 25
        assert len(manifest["programs"]) == manifest["count"]
        for name in manifest["programs"]:
            assert (CORPUS / PROGRAM_DIR / f"{name}.rlx").is_file()
            assert (CORPUS / EXPECTED_DIR / f"{name}.json").is_file()

    def test_committed_sources_match_generator(self):
        """The committed ``.rlx`` files are exactly what the recorded seed
        regenerates — the corpus cannot silently drift from the generator."""
        manifest = json.loads((CORPUS / MANIFEST).read_text())
        generated = synthesize_corpus(manifest["seed"], manifest["count"])
        for item in generated:
            committed = (CORPUS / PROGRAM_DIR / f"{item.name}.rlx").read_text()
            assert committed == item.source

    def test_replays_byte_identically(self):
        report = replay_corpus(str(CORPUS))
        assert report.ok, report.summary()
        assert report.programs >= 25

    def test_expected_files_are_canonically_encoded(self):
        """Committed bytes are the canonical encoder's output, so replay
        equality really is outcome equality, not formatting luck."""
        for path in sorted((CORPUS / EXPECTED_DIR).glob("*.json")):
            raw = path.read_text()
            assert raw == json.dumps(json.loads(raw), indent=2, sort_keys=True) + "\n"


class TestCorpusWriter:
    @pytest.fixture(scope="class")
    def fresh_corpus(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("corpus")
        report = run_fuzz(seed=4, count=3, depth=0, samples=2)
        names = write_corpus(str(directory), report)
        return directory, report, names

    def test_write_then_replay(self, fresh_corpus):
        directory, _report, names = fresh_corpus
        assert len(names) == 3
        replay = replay_corpus(str(directory))
        assert replay.ok, replay.summary()

    def test_replay_detects_tampered_expectations(self, fresh_corpus):
        directory, _report, names = fresh_corpus
        victim = directory / EXPECTED_DIR / f"{names[0]}.json"
        payload = json.loads(victim.read_text())
        payload["obligations_digest"] = "0" * 16
        victim.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        replay = replay_corpus(str(directory))
        assert not replay.ok
        assert replay.mismatches[0].name == names[0]
        assert "obligations_digest" in replay.mismatches[0].detail
        # Restore for any later test using the fixture.
        payload["obligations_digest"] = json.loads(
            (directory / EXPECTED_DIR / f"{names[1]}.json").read_text()
        ).get("obligations_digest")

    def test_writer_refuses_diverged_runs(self, tmp_path):
        report = run_fuzz(seed=4, count=2, depth=0, samples=2)
        from repro.fuzz.funnel import Divergence

        report.divergences.append(
            Divergence(
                program="x", stage="verify", left="a", right="b", detail="synthetic"
            )
        )
        with pytest.raises(ValueError, match="diverged"):
            write_corpus(str(tmp_path), report)
