"""Tests for bounded model search and model enumeration."""

from repro.logic import formula as F
from repro.logic.formula import Const, Divides, Select, Symbol, conj, exists, sym, var
from repro.solver.models import (
    bounded_model_search,
    enumerate_models,
    reset_search_stats,
    search_stats,
)


class TestBoundedModelSearch:
    def test_finds_model_in_box(self):
        formula = conj(F.gt(var("x"), Const(1)), F.lt(var("x"), Const(4)))
        model = bounded_model_search(formula, radius=4)
        assert model is not None and 1 < model[sym("x")] < 4

    def test_prefers_small_magnitudes(self):
        model = bounded_model_search(F.ge(var("x"), Const(0)), radius=4)
        assert model == {sym("x"): 0}

    def test_no_model_in_box_returns_none(self):
        formula = F.gt(var("x"), Const(100))
        assert bounded_model_search(formula, radius=4) is None

    def test_nonlinear_supported(self):
        formula = F.eq(var("x") * var("x"), Const(9))
        model = bounded_model_search(formula, radius=4)
        assert abs(model[sym("x")]) == 3

    def test_arrays_not_supported(self):
        formula = F.eq(Select(Symbol("A"), Const(0)), Const(1))
        assert bounded_model_search(formula) is None

    def test_closed_formula(self):
        assert bounded_model_search(F.TRUE) == {}
        assert bounded_model_search(F.FALSE) is None

    def test_quantifier_evaluated_over_domain(self):
        formula = exists(sym("k"), F.eq(var("x"), var("k") * Const(2)))
        model = bounded_model_search(formula, radius=3)
        assert model is not None and model[sym("x")] % 2 == 0


class TestEnumerateModels:
    def test_enumerates_all_in_range(self):
        formula = conj(F.ge(var("x"), Const(-1)), F.le(var("x"), Const(1)))
        models = enumerate_models(formula, radius=3)
        values = sorted(model[sym("x")] for model in models)
        assert values == [-1, 0, 1]

    def test_respects_limit(self):
        formula = F.ge(var("x"), Const(-10))
        models = enumerate_models(formula, radius=5, limit=3)
        assert len(models) == 3

    def test_candidates_override_box(self):
        formula = F.eq(var("x"), Const(100))
        assert enumerate_models(formula, radius=2) == []
        models = enumerate_models(formula, radius=2, candidates={sym("x"): [99, 100, 101]})
        assert models == [{sym("x"): 100}]

    def test_multiple_symbols(self):
        formula = F.eq(var("x") + var("y"), Const(0))
        models = enumerate_models(formula, radius=1)
        assert all(model[sym("x")] + model[sym("y")] == 0 for model in models)
        assert len(models) == 3


class TestUnitPropagation:
    """Unit atoms among the top-level conjuncts prune the candidate sweep."""

    def test_pinned_symbol_prunes_to_one_candidate(self):
        reset_search_stats()
        formula = conj(F.eq(var("x"), Const(3)), F.eq(var("y"), var("x") + Const(1)))
        model = bounded_model_search(formula, radius=4)
        assert model == {sym("x"): 3, sym("y"): 4}
        stats = search_stats()
        # x is pinned to one candidate, so at most |values| assignments run.
        assert stats["assignments_evaluated"] <= 9
        assert stats["prune_rate"] > 0.8

    def test_bounds_and_disequalities_prune(self):
        reset_search_stats()
        formula = conj(
            F.ge(var("x"), Const(1)),
            F.lt(var("x"), Const(4)),
            F.ne(var("x"), Const(2)),
            F.eq(var("x") * var("x"), Const(9)),
        )
        model = bounded_model_search(formula, radius=4)
        assert model == {sym("x"): 3}
        stats = search_stats()
        assert stats["pruned_space"] <= 2  # {1, 3} survive the unit atoms

    def test_flipped_and_negated_unit_atoms(self):
        formula = conj(
            F.le(Const(2), var("x")),  # constant on the left
            F.neg(F.ge(var("x"), Const(4))),  # negated atom
        )
        models = enumerate_models(formula, radius=5)
        assert sorted(model[sym("x")] for model in models) == [2, 3]

    def test_divides_unit_atom(self):
        formula = conj(Divides(3, var("x")), F.ne(var("x"), Const(0)))
        models = enumerate_models(formula, radius=4)
        assert sorted(model[sym("x")] for model in models) == [-3, 3]

    def test_contradictory_units_yield_nothing(self):
        formula = conj(F.eq(var("x"), Const(1)), F.eq(var("x"), Const(2)))
        assert bounded_model_search(formula, radius=4) is None
        assert enumerate_models(formula, radius=4) == []

    def test_pruning_preserves_first_model_order(self):
        # The unpruned sweep finds x by |magnitude|; pruning must keep that.
        formula = conj(F.ne(var("x"), Const(0)), F.ge(var("x"), Const(-3)))
        model = bounded_model_search(formula, radius=4)
        assert model == {sym("x"): 1}

    def test_pruning_respects_candidate_override_order(self):
        formula = conj(F.ge(var("x"), Const(5)), F.le(var("x"), Const(9)))
        models = enumerate_models(
            formula, radius=2, candidates={sym("x"): [8, 6, 9, 1, 5]}
        )
        assert [model[sym("x")] for model in models] == [8, 6, 9, 5]

    def test_quantified_conjunct_still_checked_after_pruning(self):
        formula = conj(
            F.eq(var("x"), Const(2)),
            exists(sym("k"), F.eq(var("x"), var("k") * Const(2))),
        )
        model = bounded_model_search(formula, radius=4)
        assert model == {sym("x"): 2}
        unsat = conj(
            F.eq(var("x"), Const(3)),
            exists(sym("k"), F.eq(var("x"), var("k") * Const(2))),
        )
        assert bounded_model_search(unsat, radius=4) is None

    def test_pruned_error_assignments_cannot_abort(self):
        """Pruning may upgrade an old error-abort (UNKNOWN) to a sound SAT.

        The blind sweep visited y = 0 first, raised a division-by-zero
        EvaluationError and aborted the whole search with None even though
        y = 1 is a genuine model.  The unit atom ``y >= 1`` prunes y = 0,
        so the erroring assignment is never visited and the model is found.
        This is the one deliberate whole-search divergence from the old
        semantics — strictly more conclusive, never less sound (the found
        model is checked by evaluation like any other).
        """
        formula = conj(
            F.eq(F.Div(Const(1), var("y")), Const(1)),
            F.ge(var("y"), Const(1)),
        )
        assert bounded_model_search(formula, radius=4) == {sym("y"): 1}
        models = enumerate_models(formula, radius=4)
        assert {m[sym("y")] for m in models} == {1}

    def test_search_stats_shape(self):
        reset_search_stats()
        bounded_model_search(F.ge(var("x"), Const(0)), radius=2)
        stats = search_stats()
        assert stats["searches"] == 1
        assert stats["models_found"] == 1
        assert 0.0 <= stats["prune_rate"] <= 1.0
