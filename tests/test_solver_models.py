"""Tests for bounded model search and model enumeration."""

from repro.logic import formula as F
from repro.logic.formula import Const, Select, Symbol, conj, exists, sym, var
from repro.solver.models import bounded_model_search, enumerate_models


class TestBoundedModelSearch:
    def test_finds_model_in_box(self):
        formula = conj(F.gt(var("x"), Const(1)), F.lt(var("x"), Const(4)))
        model = bounded_model_search(formula, radius=4)
        assert model is not None and 1 < model[sym("x")] < 4

    def test_prefers_small_magnitudes(self):
        model = bounded_model_search(F.ge(var("x"), Const(0)), radius=4)
        assert model == {sym("x"): 0}

    def test_no_model_in_box_returns_none(self):
        formula = F.gt(var("x"), Const(100))
        assert bounded_model_search(formula, radius=4) is None

    def test_nonlinear_supported(self):
        formula = F.eq(var("x") * var("x"), Const(9))
        model = bounded_model_search(formula, radius=4)
        assert abs(model[sym("x")]) == 3

    def test_arrays_not_supported(self):
        formula = F.eq(Select(Symbol("A"), Const(0)), Const(1))
        assert bounded_model_search(formula) is None

    def test_closed_formula(self):
        assert bounded_model_search(F.TRUE) == {}
        assert bounded_model_search(F.FALSE) is None

    def test_quantifier_evaluated_over_domain(self):
        formula = exists(sym("k"), F.eq(var("x"), var("k") * Const(2)))
        model = bounded_model_search(formula, radius=3)
        assert model is not None and model[sym("x")] % 2 == 0


class TestEnumerateModels:
    def test_enumerates_all_in_range(self):
        formula = conj(F.ge(var("x"), Const(-1)), F.le(var("x"), Const(1)))
        models = enumerate_models(formula, radius=3)
        values = sorted(model[sym("x")] for model in models)
        assert values == [-1, 0, 1]

    def test_respects_limit(self):
        formula = F.ge(var("x"), Const(-10))
        models = enumerate_models(formula, radius=5, limit=3)
        assert len(models) == 3

    def test_candidates_override_box(self):
        formula = F.eq(var("x"), Const(100))
        assert enumerate_models(formula, radius=2) == []
        models = enumerate_models(formula, radius=2, candidates={sym("x"): [99, 100, 101]})
        assert models == [{sym("x"): 100}]

    def test_multiple_symbols(self):
        formula = F.eq(var("x") + var("y"), Const(0))
        models = enumerate_models(formula, radius=1)
        assert all(model[sym("x")] + model[sym("y")] == 0 for model in models)
        assert len(models) == 3
