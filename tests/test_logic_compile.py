"""The compiled evaluator: differential equivalence with the tree walker.

The contract of :mod:`repro.logic.compile` is *observational identity* with
:func:`repro.logic.evaluate.evaluate`: for every formula and valuation the
compiled closure returns the same boolean — and raises
:class:`EvaluationError` in exactly the same cases (missing symbols,
division/modulo by zero, quantifiers without a domain, integer-valued
``Store`` terms, missing array elements).  Hypothesis drives the
differential over randomly generated formulas (including quantifiers,
``Ite``, ``Div``/``Mod``, ``Divides`` and array ``Select``) and partial
valuations; deterministic tests pin memoisation, cache statistics and
valuation non-mutation.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.logic import formula as F
from repro.logic.compile import (
    compile_formula,
    compile_stats,
    compile_term,
    evaluate_compiled,
    evaluate_term_compiled,
    reset_compile_stats,
)
from repro.logic.evaluate import EvaluationError, Valuation, evaluate, evaluate_term
from repro.logic.formula import (
    Const,
    Divides,
    Exists,
    Forall,
    Iff,
    Implies,
    Ite,
    Select,
    Store,
    Symbol,
    conj,
    disj,
    eq,
    neg,
    sym,
    var,
)

NAMES = ["x", "y", "z"]
ARRAY = Symbol("A")
names = st.sampled_from(NAMES)
small_ints = st.integers(min_value=-4, max_value=4)
DOMAIN = range(-3, 4)


@st.composite
def terms(draw, depth=2):
    if depth == 0 or draw(st.booleans()):
        choice = draw(st.integers(min_value=0, max_value=2))
        if choice == 0:
            return var(draw(names))
        if choice == 1:
            return Const(draw(small_ints))
        return Select(ARRAY, Const(draw(st.integers(min_value=-1, max_value=2))))
    choice = draw(st.integers(min_value=0, max_value=7))
    if choice <= 4:
        op = draw(st.sampled_from([F.Add, F.Sub, F.Mul, F.Min, F.Max]))
        return op(draw(terms(depth=depth - 1)), draw(terms(depth=depth - 1)))
    if choice == 5:
        return F.Div(draw(terms(depth=depth - 1)), draw(terms(depth=depth - 1)))
    if choice == 6:
        return F.Mod(draw(terms(depth=depth - 1)), draw(terms(depth=depth - 1)))
    return Ite(
        draw(formulas(depth=0)),
        draw(terms(depth=depth - 1)),
        draw(terms(depth=depth - 1)),
    )


@st.composite
def atoms(draw):
    choice = draw(st.integers(min_value=0, max_value=6))
    if choice == 6:
        return Divides(draw(st.integers(min_value=-3, max_value=3)), draw(terms()))
    rel = [F.lt, F.le, F.gt, F.ge, F.eq, F.ne][choice]
    return rel(draw(terms()), draw(terms()))


@st.composite
def formulas(draw, depth=2):
    if depth == 0:
        return draw(atoms())
    choice = draw(st.integers(min_value=0, max_value=7))
    if choice == 0:
        return draw(atoms())
    if choice == 1:
        return neg(draw(formulas(depth=depth - 1)))
    if choice == 2:
        return conj(draw(formulas(depth=depth - 1)), draw(formulas(depth=depth - 1)))
    if choice == 3:
        return disj(draw(formulas(depth=depth - 1)), draw(formulas(depth=depth - 1)))
    if choice == 4:
        return Implies(draw(formulas(depth=depth - 1)), draw(formulas(depth=depth - 1)))
    if choice == 5:
        return Iff(draw(formulas(depth=depth - 1)), draw(formulas(depth=depth - 1)))
    quantifier = Exists if draw(st.booleans()) else Forall
    return quantifier(sym(draw(names)), draw(formulas(depth=depth - 1)))


@st.composite
def valuations(draw):
    """Possibly *partial* valuations: missing symbols/cells exercise errors."""
    scalars = {
        sym(name): draw(small_ints)
        for name in NAMES
        if draw(st.booleans()) or draw(st.booleans())  # present with p=3/4
    }
    arrays = {}
    if draw(st.booleans()):
        arrays[ARRAY] = {
            index: draw(small_ints)
            for index in range(-1, 3)
            if draw(st.integers(min_value=0, max_value=3)) > 0
        }
    return Valuation(scalars=scalars, arrays=arrays)


def _outcome(fn):
    """Run one evaluator, capturing its value or its EvaluationError text."""
    try:
        return ("value", fn())
    except EvaluationError as error:
        return ("error", str(error))


class TestDifferentialEquivalence:
    @settings(max_examples=300, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(formulas(), valuations(), st.booleans())
    def test_formula_compiled_equals_tree(self, formula, valuation, with_domain):
        domain = DOMAIN if with_domain else None
        expected = _outcome(lambda: evaluate(formula, valuation, domain))
        actual = _outcome(lambda: evaluate_compiled(formula, valuation, domain))
        assert actual == expected

    @settings(max_examples=300, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(terms(), valuations())
    def test_term_compiled_equals_tree(self, term, valuation):
        expected = _outcome(lambda: evaluate_term(term, valuation, DOMAIN))
        actual = _outcome(lambda: evaluate_term_compiled(term, valuation, DOMAIN))
        assert actual == expected

    @settings(max_examples=150, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(formulas(), valuations())
    def test_compiled_run_does_not_mutate_valuation(self, formula, valuation):
        scalars_before = dict(valuation.scalars)
        try:
            evaluate_compiled(formula, valuation, DOMAIN)
        except EvaluationError:
            pass
        assert valuation.scalars == scalars_before


class TestCompilationCache:
    def test_closure_memoised_on_interned_node(self):
        formula = conj(F.ge(var("x"), Const(0)), F.lt(var("x"), Const(9)))
        assert compile_formula(formula) is compile_formula(formula)
        # Interning means an equal formula built separately shares the closure.
        again = conj(F.ge(var("x"), Const(0)), F.lt(var("x"), Const(9)))
        assert again is formula
        assert compile_formula(again) is compile_formula(formula)

    def test_shared_subterm_compiles_once(self):
        reset_compile_stats()
        shared = F.eq(var("x") + var("y"), Const(0))
        left = conj(shared, F.gt(var("x"), Const(-5)))
        right = disj(shared, F.lt(var("y"), Const(5)))
        compile_formula(left)
        first = compile_stats()["nodes_compiled"]
        compile_formula(right)
        second = compile_stats()["nodes_compiled"]
        # Compiling `right` must not recompile the shared atom or its terms.
        assert second - first <= F.formula_size(right) - F.formula_size(shared)

    def test_stats_track_cold_and_warm_requests(self):
        reset_compile_stats()
        formula = F.ne(var("x") * Const(3), Const(7))
        compile_formula(formula)  # may be warm already (interned across tests)
        warm_before = compile_stats()["hits"]
        compile_formula(formula)
        stats = compile_stats()
        assert stats["hits"] == warm_before + 1
        assert stats["requests"] >= 2

    def test_store_term_raises_like_tree_walker(self):
        stored = Store(ARRAY, Const(0), Const(1))
        valuation = Valuation(arrays={ARRAY: {0: 5}})
        with pytest.raises(EvaluationError):
            evaluate_term(stored, valuation, DOMAIN)
        with pytest.raises(EvaluationError):
            evaluate_term_compiled(stored, valuation, DOMAIN)

    def test_quantifier_shadowing(self):
        # exists x. (x == 2 && forall x. x >= -3) with outer x bound to 0.
        inner = Forall(sym("x"), F.ge(var("x"), Const(-3)))
        formula = Exists(sym("x"), conj(eq(var("x"), Const(2)), inner))
        valuation = Valuation(scalars={sym("x"): 0})
        assert evaluate(formula, valuation, DOMAIN) is True
        assert evaluate_compiled(formula, valuation, DOMAIN) is True
        assert valuation.scalars[sym("x")] == 0

    def test_compile_rejects_non_nodes(self):
        with pytest.raises(TypeError):
            compile_formula(var("x"))
        with pytest.raises(TypeError):
            compile_term(F.TRUE)
