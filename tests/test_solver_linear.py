"""Tests for linear-term normalisation."""

import pytest

from repro.logic.formula import Const, Div, Min, Mul, Select, Symbol, var
from repro.solver.linear import LinearTerm, NonLinearError, is_linear, linearize
from repro.logic.formula import sym


class TestLinearTerm:
    def test_of_drops_zero_coefficients(self):
        term = LinearTerm.of({sym("x"): 0, sym("y"): 2}, 1)
        assert term.symbols() == {sym("y")}

    def test_add_and_negate(self):
        a = LinearTerm.of({sym("x"): 2}, 1)
        b = LinearTerm.of({sym("x"): -2, sym("y"): 1}, 3)
        total = a.add(b)
        assert total.coefficient(sym("x")) == 0
        assert total.coefficient(sym("y")) == 1
        assert total.constant == 4
        assert a.negate().constant == -1

    def test_scale(self):
        term = LinearTerm.of({sym("x"): 3}, -2).scale(2)
        assert term.coefficient(sym("x")) == 6
        assert term.constant == -4
        assert LinearTerm.of({sym("x"): 1}).scale(0).is_constant()

    def test_substitute(self):
        term = LinearTerm.of({sym("x"): 2, sym("y"): 1}, 0)
        replaced = term.substitute(sym("x"), LinearTerm.of({sym("z"): 1}, 5))
        assert replaced.coefficient(sym("z")) == 2
        assert replaced.coefficient(sym("x")) == 0
        assert replaced.constant == 10

    def test_evaluate(self):
        term = LinearTerm.of({sym("x"): 2, sym("y"): -1}, 7)
        assert term.evaluate({sym("x"): 3, sym("y"): 4}) == 9

    def test_evaluate_missing_symbol_raises(self):
        with pytest.raises(KeyError):
            LinearTerm.of({sym("x"): 1}).evaluate({})

    def test_content(self):
        assert LinearTerm.of({sym("x"): 4, sym("y"): 6}).content() == 2
        assert LinearTerm.constant_term(5).content() == 0

    def test_to_term_roundtrip_through_linearize(self):
        term = LinearTerm.of({sym("x"): 3, sym("y"): -1}, 4)
        assert linearize(term.to_term()) == term


class TestLinearize:
    def test_simple_expression(self):
        term = linearize(var("x") * 2 + var("y") - Const(3))
        assert term.coefficient(sym("x")) == 2
        assert term.coefficient(sym("y")) == 1
        assert term.constant == -3

    def test_constant_times_variable_either_order(self):
        assert linearize(Mul(Const(3), var("x"))).coefficient(sym("x")) == 3
        assert linearize(Mul(var("x"), Const(3))).coefficient(sym("x")) == 3

    def test_nonlinear_product_raises(self):
        with pytest.raises(NonLinearError):
            linearize(Mul(var("x"), var("y")))

    def test_division_must_be_eliminated_first(self):
        with pytest.raises(NonLinearError):
            linearize(Div(var("x"), Const(2)))

    def test_min_select_not_linear(self):
        assert not is_linear(Min(var("x"), var("y")))
        assert not is_linear(Select(Symbol("A"), var("i")))

    def test_is_linear_true(self):
        assert is_linear(var("x") + 4 * var("y"))
