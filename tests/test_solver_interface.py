"""Tests for the solver facade: satisfiability, validity, models, statistics."""

import pytest

from repro.logic import formula as F
from repro.logic.evaluate import Valuation, evaluate
from repro.logic.formula import Const, Divides, Select, Symbol, conj, exists, forall, sym, var
from repro.solver.interface import Solver, default_solver
from repro.solver.lia import Status


@pytest.fixture(scope="module")
def solver():
    return Solver()


class TestValidity:
    def test_simple_valid_entailment(self, solver):
        formula = F.implies(F.lt(var("x"), var("y")), F.le(var("x") + 1, var("y")))
        assert solver.check_valid(formula).is_valid

    def test_invalid_with_counterexample(self, solver):
        formula = F.implies(F.lt(var("x"), var("y")), F.le(var("x") + 2, var("y")))
        result = solver.check_valid(formula)
        assert result.status is Status.INVALID
        assert result.model is not None
        # The counterexample really falsifies the formula.
        assert evaluate(formula, Valuation(scalars=dict(result.model))) is False

    def test_case_split_over_disjunction(self, solver):
        formula = F.implies(
            F.disj(F.eq(var("x"), 0), F.eq(var("x"), 1)), F.le(var("x"), Const(1))
        )
        assert solver.is_valid(formula)

    def test_transitivity(self, solver):
        formula = F.implies(
            conj(F.le(var("a"), var("b")), F.le(var("b"), var("c"))),
            F.le(var("a"), var("c")),
        )
        assert solver.is_valid(formula)

    def test_min_max_reasoning(self, solver):
        formula = F.le(F.Min(var("x"), var("y")), F.Max(var("x"), var("y")))
        assert solver.is_valid(formula)

    def test_max_lipschitz_property(self, solver):
        # |max(m1,a1) - max(m2,a2)| <= e  when  |m1-m2| <= e and |a1-a2| <= e
        m1, m2, a1, a2, e = var("m1"), var("m2"), var("a1"), var("a2"), var("e")
        hyp = conj(
            F.le(m1 - m2, e), F.le(m2 - m1, e), F.le(a1 - a2, e), F.le(a2 - a1, e),
            F.ge(e, Const(0)),
        )
        lhs = F.Max(m1, a1)
        rhs = F.Max(m2, a2)
        goal = conj(F.le(lhs - rhs, e), F.le(rhs - lhs, e))
        assert solver.is_valid(F.implies(hyp, goal))

    def test_division_validity(self, solver):
        formula = F.implies(
            F.ge(var("x"), Const(0)),
            F.le(F.Div(var("x"), Const(2)) * Const(2), var("x")),
        )
        assert solver.is_valid(formula)

    def test_div_mod_identity(self, solver):
        formula = F.eq(
            F.Div(var("x"), Const(3)) * Const(3) + F.Mod(var("x"), Const(3)), var("x")
        )
        assert solver.is_valid(formula)

    def test_quantified_hypothesis(self, solver):
        formula = F.implies(
            exists(sym("k"), F.eq(var("x"), var("k") * Const(2))),
            F.ne(var("x"), Const(3)),
        )
        assert solver.is_valid(formula)

    def test_universal_statement_via_cooper(self, solver):
        formula = forall(sym("x"), exists(sym("y"), F.gt(var("y"), var("x"))))
        assert solver.is_valid(formula)

    def test_parity_covering(self, solver):
        formula = forall(
            sym("x"), F.disj(Divides(2, var("x")), Divides(2, var("x") + Const(1)))
        )
        assert solver.is_valid(formula)


class TestSatisfiability:
    def test_sat_with_model(self, solver):
        formula = conj(F.gt(var("x"), Const(3)), F.lt(var("x"), Const(6)))
        result = solver.check_sat(formula)
        assert result.is_sat
        assert 3 < result.model[sym("x")] < 6

    def test_unsat(self, solver):
        formula = conj(F.gt(var("x"), Const(3)), F.lt(var("x"), Const(3)))
        assert solver.check_sat(formula).is_unsat

    def test_unsat_by_parity(self, solver):
        formula = conj(Divides(2, var("x")), Divides(2, var("x") + Const(1)))
        assert solver.check_sat(formula).is_unsat

    def test_equality_chain_model(self, solver):
        formula = conj(
            F.eq(var("x"), var("y") + 1), F.eq(var("y"), var("z") + 1), F.eq(var("z"), 5)
        )
        model = solver.find_model(formula)
        assert model[sym("x")] == 7

    def test_true_and_false(self, solver):
        assert solver.check_sat(F.TRUE).is_sat
        assert solver.check_sat(F.FALSE).is_unsat

    def test_model_satisfies_formula(self, solver):
        formula = conj(
            F.le(Const(0), var("a")),
            F.le(var("a"), var("b")),
            F.eq(var("b") + var("c"), Const(10)),
            F.gt(var("c"), Const(2)),
        )
        model = solver.find_model(formula)
        assert evaluate(formula, Valuation(scalars=dict(model))) is True

    def test_nonlinear_falls_back_to_bounded_search(self, solver):
        formula = F.eq(var("x") * var("x"), Const(4))
        result = solver.check_sat(formula)
        assert result.is_sat
        assert abs(result.model[sym("x")]) == 2

    def test_nonlinear_unsat_is_unknown_not_wrong(self, solver):
        # x*x == -1 has no integer solution; the bounded fallback cannot prove
        # that, so the answer must be UNKNOWN (conservative), never SAT.
        formula = F.eq(var("x") * var("x"), Const(-1))
        result = solver.check_sat(formula)
        assert result.status in (Status.UNKNOWN, Status.UNSAT)


class TestArrays:
    def test_functional_consistency(self, solver):
        array = Symbol("A")
        formula = F.implies(
            F.eq(var("i"), var("j")),
            F.eq(Select(array, var("i")), Select(array, var("j"))),
        )
        assert solver.is_valid(formula)

    def test_distinct_indices_unconstrained(self, solver):
        array = Symbol("A")
        formula = F.eq(Select(array, var("i")), Select(array, var("j")))
        assert solver.check_valid(formula).status is Status.INVALID

    def test_array_with_quantified_hypothesis_index(self, solver):
        array = Symbol("A")
        formula = F.implies(
            exists(sym("k"), conj(F.eq(var("i"), var("k")), F.eq(var("j"), var("k")))),
            F.eq(Select(array, var("i")), Select(array, var("j"))),
        )
        assert solver.is_valid(formula)


class TestStatisticsAndDefaults:
    def test_statistics_accumulate(self):
        solver = Solver()
        solver.check_valid(F.le(var("x"), var("x")))
        solver.check_sat(F.lt(var("x"), Const(0)))
        stats = solver.statistics.as_dict()
        assert stats["validity_queries"] == 1
        assert stats["sat_queries"] >= 2  # check_valid issues a sat query internally

    def test_default_solver_is_shared(self):
        assert default_solver() is default_solver()

    def test_disabling_fallback_reports_unknown(self):
        solver = Solver(enable_bounded_fallback=False)
        result = solver.check_sat(F.eq(var("x") * var("x"), Const(4)))
        assert result.status is Status.UNKNOWN
