"""Tests for the relaxation transformations (Section 1's mechanism list)."""

import pytest

from repro.lang import builder as b
from repro.lang.analysis import contains_relax, no_rel
from repro.lang.ast import Assign, Relax, While
from repro.relaxations import (
    approximate_memoization,
    approximate_reads,
    dynamic_knob,
    eliminate_synchronization,
    perforate_loop,
    sample_reduction,
    skip_tasks,
)
from repro.semantics.choosers import FixedChoiceChooser
from repro.semantics.interpreter import run_original, run_relaxed
from repro.semantics.state import State, Terminated


def summation_program():
    loop = While(
        condition=b.lt("i", "n"),
        body=b.block(b.assign("s", b.add("s", "i")), b.assign("i", b.add("i", 1))),
        invariant=b.true,
    )
    return (
        b.program(
            "sum",
            b.assign("s", 0),
            b.assign("i", 0),
            loop,
            variables=("s", "i", "n"),
        ),
        loop,
    )


class TestLoopPerforation:
    def test_inserts_relax_and_stride(self):
        program, loop = summation_program()
        result = perforate_loop(program, loop, counter="i")
        assert contains_relax(result.program.body)
        assert "stride" in result.program.variables

    def test_original_semantics_unchanged(self):
        program, loop = summation_program()
        result = perforate_loop(program, loop, counter="i")
        original = run_original(result.program, State.of({"n": 6}))
        baseline = run_original(program, State.of({"n": 6}))
        assert original.state.scalar("s") == baseline.state.scalar("s")

    def test_relaxed_semantics_skips_iterations(self):
        program, loop = summation_program()
        result = perforate_loop(program, loop, counter="i", max_stride=2)
        relaxed = run_relaxed(
            result.program, State.of({"n": 6}), chooser=FixedChoiceChooser([{"stride": 2}])
        )
        assert isinstance(relaxed, Terminated)
        # Stride 2 sums only the even indices 0, 2, 4.
        assert relaxed.state.scalar("s") == 6


class TestDynamicKnob:
    def test_knob_relaxation_shape(self):
        program = b.program("serve", b.assign("served", "max_r"), variables=("served", "max_r"))
        result = dynamic_knob(program, knob="max_r", floor=10)
        assert isinstance(result.inserted_relax[0], Relax)
        assert "original_max_r" in result.program.variables

    def test_original_run_keeps_requested_value(self):
        program = b.program("serve", b.assign("served", "max_r"), variables=("served", "max_r"))
        result = dynamic_knob(program, knob="max_r", floor=10)
        outcome = run_original(result.program, State.of({"max_r": 30}))
        assert outcome.state.scalar("served") == 30

    def test_relaxed_run_respects_floor(self):
        program = b.program("serve", b.assign("served", "max_r"), variables=("served", "max_r"))
        result = dynamic_knob(program, knob="max_r", floor=10)
        outcome = run_relaxed(
            result.program,
            State.of({"max_r": 30}),
            chooser=FixedChoiceChooser([{"max_r": 12}]),
        )
        assert outcome.state.scalar("served") == 12


class TestTaskSkippingAndSampling:
    def test_skip_tasks_bounds(self):
        program = b.program("tasks", b.assign("done", "tasks"), variables=("done", "tasks"))
        result = skip_tasks(program, remaining_tasks_var="tasks", max_skipped=3)
        outcome = run_relaxed(
            result.program, State.of({"tasks": 10}), chooser=FixedChoiceChooser([{"tasks": 7}])
        )
        assert outcome.state.scalar("done") == 7
        assert result.suggested_relates

    def test_skip_tasks_original_unchanged(self):
        program = b.program("tasks", b.assign("done", "tasks"), variables=("done", "tasks"))
        result = skip_tasks(program, remaining_tasks_var="tasks", max_skipped=3)
        outcome = run_original(result.program, State.of({"tasks": 10}))
        assert outcome.state.scalar("done") == 10

    def test_sample_reduction_fraction(self):
        program = b.program("reduce", b.assign("used", "samples"), variables=("used", "samples", "population"))
        result = sample_reduction(
            program, sample_count_var="samples", population_var="population",
            minimum_fraction_percent=50,
        )
        outcome = run_relaxed(
            result.program,
            State.of({"samples": 100, "population": 100}),
            chooser=FixedChoiceChooser([{"samples": 60}]),
        )
        assert outcome.state.scalar("used") == 60


class TestApproximateReadsAndMemoization:
    def test_approximate_reads_envelope(self):
        read = Assign("a", b.aread("A", "i"))
        program = b.program("read", read, b.assign("out", "a"),
                            variables=("a", "i", "out", "e"), arrays=("A",))
        result = approximate_reads(program, value_var="a", error_bound_var="e", insert_after=read)
        state = State.of({"i": 0, "e": 2, "a": 0, "out": 0}, arrays={"A": {0: 10}})
        outcome = run_relaxed(result.program, state, chooser=FixedChoiceChooser([{"a": 12}]))
        assert outcome.state.scalar("out") == 12
        assert result.suggested_relates

    def test_memoization_allows_cached_result(self):
        compute = Assign("result", b.mul("arg", 2))
        program = b.program(
            "memo", compute, variables=("result", "arg", "cached_arg", "cached_result")
        )
        result = approximate_memoization(
            program,
            result_var="result",
            argument_var="arg",
            cached_argument_var="cached_arg",
            cached_result_var="cached_result",
            argument_tolerance=1,
            result_tolerance=2,
            insert_after=compute,
        )
        state = State.of({"arg": 5, "cached_arg": 5, "cached_result": 10, "result": 0})
        original = run_original(result.program, state)
        assert original.state.scalar("result") == 10
        relaxed = run_relaxed(
            result.program, state, chooser=FixedChoiceChooser([{"result": 10}])
        )
        assert relaxed.state.scalar("result") == 10


class TestSynchronizationElimination:
    def test_racy_arrays_relaxed(self):
        program = b.program(
            "reduce", b.assign("x", b.aread("RS", 0)), variables=("x",), arrays=("RS",)
        )
        result = eliminate_synchronization(program, racy_arrays=("RS",))
        relax_stmt = result.inserted_relax[0]
        assert relax_stmt.targets == ("RS",)
        original = run_original(result.program, State.of({"x": 0}, arrays={"RS": {0: 4}}))
        assert original.state.scalar("x") == 4
