"""Domain-property tests for the four declarative case studies.

Verification and basic simulation health of every registered study are
covered by the parametrized suites in ``test_verifier_and_casestudies``;
these tests pin each new study's *domain* guarantees dynamically — the
quantities its relate statement talks about — plus explorer integration.
"""

import pytest

from repro.casestudies import get_case_study
from repro.explore import explore
from repro.semantics.state import Terminated


def _terminated_records(summary):
    return [
        record
        for record in summary.records
        if isinstance(record.original, Terminated)
        and isinstance(record.relaxed, Terminated)
    ]


class TestSumReductionPerforation:
    def test_relaxed_sum_is_bounded_underapproximation(self):
        study = get_case_study("sum-reduction-perforation")
        summary = study.simulate(runs=12, seed=5)
        assert summary.relate_violations == 0
        for record in _terminated_records(summary):
            dropped = record.metrics["sum_dropped"]
            assert 0 <= dropped <= record.metrics["distortion_budget"]
            assert record.metrics["within_budget"] == 1.0

    def test_workloads_respect_declared_term_bound(self):
        study = get_case_study("sum-reduction-perforation")
        for state in study.workloads(10, seed=2):
            bound = state.scalar("M")
            assert bound >= 0
            assert all(0 <= value <= bound for value in state.array("A").values())


class TestStencilApproxMemory:
    def test_accumulated_output_within_total_envelope(self):
        study = get_case_study("stencil-approx-memory")
        summary = study.simulate(runs=12, seed=4)
        assert summary.relate_violations == 0
        for record in _terminated_records(summary):
            assert record.metrics["within_envelope"] == 1.0

    def test_zero_envelope_rows_are_exact(self):
        study = get_case_study("stencil-approx-memory")
        summary = study.simulate(runs=8, seed=0)
        exact_rows = [
            record
            for record in _terminated_records(summary)
            if all(value == 0 for value in record.initial_state.array("E").values())
        ]
        assert exact_rows, "workload generator should include exact-memory rows"
        for record in exact_rows:
            assert record.metrics["acc_deviation"] == 0.0


class TestBnbEarlyExit:
    def test_relaxed_incumbent_is_valid_and_scan_is_shorter(self):
        study = get_case_study("bnb-early-exit")
        summary = study.simulate(runs=15, seed=7)
        assert summary.relate_violations == 0
        for record in _terminated_records(summary):
            assert record.metrics["incumbent_valid"] == 1.0
            assert record.metrics["scanned_relaxed"] <= record.metrics["scanned_original"]
            # The floor guarantees the seed candidate was always considered.
            assert record.metrics["best_relaxed"] >= record.relaxed.state.scalar("first")

    def test_early_exit_actually_occurs(self):
        study = get_case_study("bnb-early-exit")
        summary = study.simulate(runs=15, seed=3)
        skipped = summary.metric_values("candidates_skipped")
        assert any(value > 0 for value in skipped)


class TestPipelineTwoKnobs:
    def test_total_drop_stays_within_budget(self):
        study = get_case_study("pipeline-two-knobs")
        summary = study.simulate(runs=12, seed=9)
        assert summary.relate_violations == 0
        for record in _terminated_records(summary):
            assert record.metrics["within_budget"] == 1.0
            assert record.metrics["stage1_dropped"] >= 0
            assert record.metrics["stage2_dropped"] >= 0

    def test_joint_relaxation_spreads_over_both_knobs(self):
        study = get_case_study("pipeline-two-knobs")
        summary = study.simulate(runs=20, seed=11)
        drop1 = summary.metric_values("stage1_dropped")
        drop2 = summary.metric_values("stage2_dropped")
        assert any(value > 0 for value in drop1)
        assert any(value > 0 for value in drop2)


class TestNewStudiesExplore:
    def test_bnb_explorer_yields_verified_frontier(self):
        report = explore("bnb-early-exit", depth=1, samples=3, seed=0)
        assert report.survivors
        assert report.frontier
        # The unmodified base candidate always survives the static gate.
        assert report.outcomes[0].candidate.depth == 0
        assert report.outcomes[0].verified

    def test_sum_reduction_restriction_candidates_survive(self):
        report = explore("sum-reduction-perforation", depth=1, samples=3, seed=0)
        restricted = [
            outcome
            for outcome in report.outcomes
            if outcome.candidate.site_ids
            and outcome.candidate.site_ids[0].startswith("restrict:")
        ]
        # Restricting the drop envelope strengthens the predicate, so the
        # proof must still go through on at least one restriction candidate.
        assert any(outcome.verified for outcome in restricted)
        assert report.frontier
