"""``repro explore --seed`` must be ``--jobs``-invariant.

The fuzz driver pins Monte Carlo scoring end-to-end by seed; that only
works if the explore envelope — candidates, verdicts, obligations digests,
scores, Pareto frontier, reward table — is a pure function of
``(study, depth, samples, seed)`` and never of the discharge worker count.
``--jobs`` parallelises obligation discharge only; scoring stays serial
and draws from its own per-candidate seeded streams.
"""

import pytest

from repro.explore import explore
from repro.fuzz import normalized_explore_payload


@pytest.mark.parametrize("jobs", [2, 4])
def test_identical_seed_identical_envelope_across_jobs(jobs):
    serial = explore(
        "sum-reduction-perforation", depth=1, samples=4, seed=7, jobs=1
    ).as_dict()
    parallel = explore(
        "sum-reduction-perforation", depth=1, samples=4, seed=7, jobs=jobs
    ).as_dict()
    assert normalized_explore_payload(serial) == normalized_explore_payload(parallel)


def test_different_seeds_may_change_scores_but_not_candidates():
    a = explore("sum-reduction-perforation", depth=1, samples=4, seed=1).as_dict()
    b = explore("sum-reduction-perforation", depth=1, samples=4, seed=2).as_dict()
    # The candidate space and verdicts are seed-independent; only the
    # Monte Carlo scores (and hence the frontier) may move.
    assert [row["fingerprint"] for row in a["results"]] == [
        row["fingerprint"] for row in b["results"]
    ]
    assert [row["verified"] for row in a["results"]] == [
        row["verified"] for row in b["results"]
    ]
