"""Tests for the case-study registry, the declarative toolkit and lint."""

import pytest

from repro.casestudies import (
    CaseStudy,
    DuplicateCaseStudyError,
    LUApproximateMemory,
    SwishDynamicKnobs,
    UnknownCaseStudyError,
    WaterParallelization,
    all_case_studies,
    case_study_names,
    get_case_study,
    lint_case_study,
    lint_registry,
    register_case_study,
    unregister_case_study,
)
from repro.casestudies.spec import (
    StudyDefinition,
    branch_at,
    loop_at,
    relax_at,
)
from repro.cli import main
from repro.hoare.verifier import AcceptabilitySpec
from repro.lang.parser import parse_program
from repro.semantics.state import State

#: Every study this PR's corpus must expose, in registration order.
EXPECTED_NAMES = (
    "swish-dynamic-knobs",
    "water-parallelization",
    "lu-approximate-memory",
    "sum-reduction-perforation",
    "bnb-early-exit",
    "stencil-approx-memory",
    "pipeline-two-knobs",
)


def _toy_definition(name: str, source: str = "") -> StudyDefinition:
    return StudyDefinition(
        name=name,
        source=source
        or "vars x; relax (x) st (x == x); relate l: (x<o> == x<o>);",
        spec=lambda program: AcceptabilitySpec(),
        workloads=lambda count, seed: [State.of({"x": 0}) for _ in range(count)],
    )


class TestRegistryContents:
    def test_all_seven_studies_registered(self):
        assert case_study_names() == EXPECTED_NAMES

    def test_classes_are_case_studies(self):
        for cls in all_case_studies():
            assert issubclass(cls, CaseStudy)
            assert cls().name in EXPECTED_NAMES


class TestResolution:
    @pytest.mark.parametrize("name", EXPECTED_NAMES)
    def test_round_trip_by_name(self, name):
        assert get_case_study(name).name == name

    @pytest.mark.parametrize("cls", all_case_studies())
    def test_round_trip_by_class_and_class_name(self, cls):
        assert get_case_study(cls).name == cls().name
        assert get_case_study(cls.__name__).name == cls().name

    @pytest.mark.parametrize("cls", all_case_studies())
    def test_round_trip_by_instance(self, cls):
        instance = cls()
        assert get_case_study(instance) is instance

    def test_unique_prefix_resolves(self):
        assert get_case_study("lu").name == "lu-approximate-memory"
        assert get_case_study("bnb").name == "bnb-early-exit"
        assert get_case_study("stencil").name == "stencil-approx-memory"

    def test_classic_classes_resolve(self):
        assert isinstance(get_case_study(SwishDynamicKnobs), SwishDynamicKnobs)
        assert isinstance(get_case_study(WaterParallelization), WaterParallelization)
        assert isinstance(get_case_study(LUApproximateMemory), LUApproximateMemory)

    def test_unknown_name_lists_registered_studies(self):
        with pytest.raises(UnknownCaseStudyError) as excinfo:
            get_case_study("no-such-study")
        message = str(excinfo.value)
        for name in EXPECTED_NAMES:
            assert name in message

    def test_ambiguous_prefix_is_unknown(self):
        # 's' prefixes swish-*, sum-* and stencil-* — must not silently pick one.
        with pytest.raises(UnknownCaseStudyError):
            get_case_study("s")


class TestRegistration:
    def test_duplicate_name_rejected(self):
        definition = _toy_definition("toy-duplicate-study")
        register_case_study(definition)
        try:
            clone = _toy_definition("toy-duplicate-study")
            with pytest.raises(DuplicateCaseStudyError, match="toy-duplicate-study"):
                register_case_study(clone)
        finally:
            unregister_case_study("toy-duplicate-study")

    def test_reregistering_same_class_is_idempotent(self):
        register_case_study(SwishDynamicKnobs)  # same class object: no error
        assert case_study_names() == EXPECTED_NAMES

    def test_registering_base_class_name_rejected(self):
        class Unnamed(CaseStudy):
            pass

        with pytest.raises(ValueError, match="distinctive 'name'"):
            register_case_study(Unnamed)

    def test_non_case_study_rejected(self):
        with pytest.raises(TypeError):
            register_case_study(object())

    def test_definition_registration_round_trips(self):
        definition = _toy_definition("toy-registered-study")
        register_case_study(definition)
        try:
            study = get_case_study("toy-registered-study")
            assert study.name == "toy-registered-study"
            assert study.build_program().name == "toy-registered-study"
            assert len(study.workloads(3)) == 3
        finally:
            unregister_case_study("toy-registered-study")

    def test_definition_reregistration_is_idempotent(self):
        definition = _toy_definition("toy-idempotent-study")
        register_case_study(definition)
        try:
            register_case_study(definition)  # same definition: no duplicate error
            # The memoised adapter class resolves back to the registered study.
            resolved = get_case_study(definition.as_case_study_class())
            assert resolved.name == "toy-idempotent-study"
        finally:
            unregister_case_study("toy-idempotent-study")


class TestSelectors:
    def test_selectors_find_positional_nodes(self):
        program = parse_program(
            "vars x; relax (x) st (x == x);"
            "while (x < 3) invariant (true) { if (x < 1) { x = x + 1; } }"
        )
        assert loop_at(program, 0).condition is not None
        assert branch_at(program, 0).condition is not None
        assert relax_at(program, 0).targets == ("x",)

    def test_selector_out_of_range(self):
        program = parse_program("vars x; x = 1;")
        with pytest.raises(IndexError, match="0 While"):
            loop_at(program, 0)


class TestLint:
    def test_full_registry_is_lint_clean(self):
        reports = lint_registry()
        assert [report.study for report in reports] == list(EXPECTED_NAMES)
        for report in reports:
            assert report.ok, report.summary()
            assert report.obligations > 0
            assert report.checks_run >= 7

    def test_lint_flags_undeclared_variables(self):
        definition = _toy_definition(
            "toy-undeclared-study", "vars x; relax (x) st (x == x); y = x;"
        )
        report = lint_case_study(definition.as_case_study_class()())
        assert not report.ok
        assert any(
            finding.check == "declared-variables" and "y" in finding.message
            for finding in report.findings
        )

    def test_lint_flags_fully_undeclared_program(self):
        # Omitting the 'vars' line entirely must still be an error, not the
        # declares-nothing warning, when the program does use variables.
        definition = _toy_definition(
            "toy-no-decls-study",
            "x = 1; relax (x) st (x == x); relate l: (x<o> == x<r>);",
        )
        report = lint_case_study(definition.as_case_study_class()())
        assert not report.ok
        assert any(
            finding.check == "declared-variables" and finding.level == "error"
            for finding in report.findings
        )

    def test_lint_flags_missing_loop_invariant(self):
        definition = _toy_definition(
            "toy-no-invariant-study",
            "vars x; relax (x) st (x == x); while (x < 3) { x = x + 1; }",
        )
        report = lint_case_study(definition.as_case_study_class()())
        assert not report.ok
        assert any(
            finding.check == "obligations-collect" for finding in report.findings
        )

    def test_lint_warns_without_relate(self):
        definition = _toy_definition(
            "toy-no-relate-study", "vars x; relax (x) st (x == x);"
        )
        report = lint_case_study(definition.as_case_study_class()())
        assert report.ok  # warnings do not fail the gate
        assert any(
            finding.check == "relate-present" and finding.level == "warning"
            for finding in report.findings
        )


class TestCaseStudyCli:
    def test_list_names_every_study(self, capsys):
        assert main(["casestudy", "list"]) == 0
        out = capsys.readouterr().out
        for name in EXPECTED_NAMES:
            assert name in out

    def test_lint_full_registry_green(self, capsys, tmp_path):
        json_path = tmp_path / "lint.json"
        assert main(["casestudy", "lint", "--json", str(json_path)]) == 0
        out = capsys.readouterr().out
        assert "FAILED" not in out
        import json

        payload = json.loads(json_path.read_text())
        from repro.cli_report import validate_payload

        assert validate_payload(payload) is None
        assert payload["command"] == "casestudy-lint"
        assert payload["verified"] is True
        assert len(payload["studies"]) == len(EXPECTED_NAMES)

    def test_lint_selected_study(self, capsys):
        assert main(["casestudy", "lint", "bnb-early-exit"]) == 0
        out = capsys.readouterr().out
        assert "bnb-early-exit: ok" in out

    def test_lint_unknown_study_exits_nonzero(self):
        with pytest.raises(SystemExit, match="registered studies"):
            main(["casestudy", "lint", "no-such-study"])
