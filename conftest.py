"""Pytest root configuration.

Adds ``src/`` to ``sys.path`` so the test suite and benchmarks run directly
from a source checkout even when the package has not been installed (the
evaluation environment has no network access, which can prevent
``pip install -e .`` from bootstrapping its build dependencies; see README).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
